#include "baseline/case.h"
#include "baseline/map.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deploy/scenario.h"
#include "geometry/medial_axis_ref.h"
#include "geometry/shapes.h"

namespace skelex::baseline {
namespace {

deploy::Scenario make(const geom::Region& region, int n, std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = n;
  spec.target_avg_deg = 8.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(region, spec);
}

TEST(CaseCorners, RectangleHasFourCorners) {
  const geom::Region rect = geom::shapes::rect(100, 60);
  const auto corners = detect_corners(rect, CaseParams{});
  ASSERT_EQ(corners.size(), 1u);
  EXPECT_EQ(corners[0].size(), 4u);
}

TEST(CaseCorners, DiskHasNone) {
  const geom::Region disk = geom::shapes::disk(40);
  const auto corners = detect_corners(disk, CaseParams{});
  ASSERT_EQ(corners.size(), 1u);
  EXPECT_TRUE(corners[0].empty());
}

TEST(CaseCorners, SmallBumpIsSuppressedByTheWindow) {
  // The bump's four turns span 22 arc units; a window of at least twice
  // that extent covers the whole bump from any of its vertices, so the
  // +-90 turns cancel and no corner appears along the top wall except
  // the rectangle's own corners.
  const geom::Region bumpy = geom::shapes::bumpy_rect(8.0, 6.0);
  CaseParams p;
  p.corner_window = 44.0;
  const auto corners = detect_corners(bumpy, p);
  ASSERT_EQ(corners.size(), 1u);
  EXPECT_EQ(corners[0].size(), 4u) << "bump corners leaked through";
}

TEST(CaseCorners, NarrowWindowSeesTheBump) {
  const geom::Region bumpy = geom::shapes::bumpy_rect(8.0, 6.0);
  CaseParams p;
  p.corner_window = 2.0;  // window smaller than the bump
  const auto corners = detect_corners(bumpy, p);
  EXPECT_GT(corners[0].size(), 4u);
}

TEST(CaseCorners, HoleRingsGetTheirOwnCorners) {
  const geom::Region w = geom::shapes::window();
  const auto corners = detect_corners(w, CaseParams{});
  ASSERT_EQ(corners.size(), 5u);  // outer + 4 panes
  for (const auto& ring : corners) EXPECT_EQ(ring.size(), 4u);
}

TEST(BranchOf, IntervalIndexing) {
  const std::vector<double> corners{10.0, 40.0, 70.0};
  EXPECT_EQ(branch_of(20.0, corners), 0);
  EXPECT_EQ(branch_of(50.0, corners), 1);
  EXPECT_EQ(branch_of(80.0, corners), 2);
  EXPECT_EQ(branch_of(5.0, corners), 2);  // wraps into the last branch
  EXPECT_EQ(branch_of(55.0, {}), 0);      // no corners: one branch
}

TEST(MapSkeleton, RectSkeletonIsMedial) {
  const geom::Region region = geom::shapes::corridor(100.0, 20.0);
  const deploy::Scenario sc = make(region, 1200, 61);
  const BoundaryInfo boundary = geometric_boundary(sc.graph, region, 2.0);
  const BaselineSkeleton map = map_skeleton(sc.graph, boundary, MapParams{});
  ASSERT_GT(map.graph.node_count(), 0);
  EXPECT_EQ(map.graph.component_count(), 1);
  // Identified nodes hug the midline y = 10 away from the short ends.
  int off_axis = 0, considered = 0;
  for (int v : map.graph.nodes()) {
    const geom::Vec2 p = sc.graph.position(v);
    if (p.x < 15 || p.x > 85) continue;
    ++considered;
    if (std::abs(p.y - 10.0) > 5.0) ++off_axis;
  }
  ASSERT_GT(considered, 5);
  EXPECT_LT(off_axis, considered / 4);
}

TEST(CaseSkeleton, RectSkeletonIsMedialAndConnected) {
  const geom::Region region = geom::shapes::corridor(100.0, 20.0);
  const deploy::Scenario sc = make(region, 1200, 62);
  const BoundaryInfo boundary = geometric_boundary(sc.graph, region, 2.0);
  const BaselineSkeleton cs =
      case_skeleton(sc.graph, boundary, region, CaseParams{});
  ASSERT_GT(cs.graph.node_count(), 0);
  EXPECT_EQ(cs.graph.component_count(), 1);
  const geom::MedialAxisParams map_params{1.0, 0.08, 15.0, 2.0};
  const geom::ReferenceMedialAxis axis(region, map_params);
  double mean = 0;
  for (int v : cs.graph.nodes()) {
    mean += axis.distance_to_axis(sc.graph.position(v));
  }
  mean /= cs.graph.node_count();
  EXPECT_LT(mean, 2.5 * sc.range);
}

// MAP's boundary-noise pathology (the paper's §I motivation for CASE):
// a small bump on the boundary makes MAP grow skeleton structure toward
// the bump; CASE with a window-smoothed corner detector does not.
TEST(Baselines, BumpPathologyHitsMapNotCase) {
  const geom::Region bumpy = geom::shapes::bumpy_rect(8.0, 6.0);
  const deploy::Scenario sc = make(bumpy, 1400, 63);
  const BoundaryInfo boundary = geometric_boundary(sc.graph, bumpy, 2.0);

  MapParams mp;
  mp.min_separation = 15.0;
  const BaselineSkeleton map = map_skeleton(sc.graph, boundary, mp);
  CaseParams cp;
  cp.corner_window = 44.0;
  const BaselineSkeleton cs = case_skeleton(sc.graph, boundary, bumpy, cp);

  // Count skeleton nodes in the "branch zone" reaching from the midline
  // toward the bump (y > 28, under the bump at x in [38, 62]).
  const auto branch_nodes = [&](const core::SkeletonGraph& sk) {
    int count = 0;
    for (int v : sk.nodes()) {
      const geom::Vec2 p = sc.graph.position(v);
      if (p.y > 28.0 && p.x > 38.0 && p.x < 62.0) ++count;
    }
    return count;
  };
  EXPECT_GT(branch_nodes(map.graph), 0) << "MAP should reach for the bump";
  EXPECT_LE(branch_nodes(cs.graph), branch_nodes(map.graph) / 2)
      << "CASE should suppress the bump branch";
}

TEST(MapSkeleton, Validation) {
  net::Graph g(3);
  BoundaryInfo info;
  info.is_boundary.assign(3, 0);
  MapParams p;
  p.min_separation = -1.0;
  EXPECT_THROW(map_skeleton(g, info, p), std::invalid_argument);
}

TEST(ConnectNodeSet, BridgesComponents) {
  // Path 0-1-2-3-4 with selected {0, 4}: connecting must add the chain.
  net::Graph g(5);
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  const std::vector<int> dist{0, 1, 2, 1, 0};
  const core::SkeletonGraph sk = connect_node_set(g, {0, 4}, dist);
  EXPECT_EQ(sk.component_count(), 1);
  EXPECT_TRUE(sk.has_node(2));
}

TEST(ConnectNodeSet, LeavesSeparateNetworkComponentsAlone) {
  net::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const std::vector<int> dist{0, 0, 0, 0};
  const core::SkeletonGraph sk = connect_node_set(g, {0, 3}, dist);
  EXPECT_EQ(sk.component_count(), 2);
}

}  // namespace
}  // namespace skelex::baseline
