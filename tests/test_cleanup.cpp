#include "core/cleanup.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/index.h"
#include "net/graph.h"

namespace skelex::core {
namespace {

// 4-connected W x H lattice; node id = y * W + x. Cells listed in `holes`
// (as (x, y) pairs flattened) are omitted from the edge set but keep
// their ids (isolated); tests only use the connected part.
struct GridWorld {
  int w = 0, h = 0;
  net::Graph g;
  std::set<int> hole_cells;

  int id(int x, int y) const { return y * w + x; }
  bool is_hole(int x, int y) const { return hole_cells.count(id(x, y)) > 0; }
};

GridWorld make_grid(int w, int h, const std::set<std::pair<int, int>>& holes = {}) {
  GridWorld world;
  world.w = w;
  world.h = h;
  world.g = net::Graph(w * h);
  for (const auto& [x, y] : holes) world.hole_cells.insert(y * w + x);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (world.is_hole(x, y)) continue;
      if (x + 1 < w && !world.is_hole(x + 1, y)) {
        world.g.add_edge(world.id(x, y), world.id(x + 1, y));
      }
      if (y + 1 < h && !world.is_hole(x, y + 1)) {
        world.g.add_edge(world.id(x, y), world.id(x, y + 1));
      }
    }
  }
  return world;
}

// Square ring of cells at Chebyshev radius r around (cx, cy), as a
// skeleton cycle (consecutive ring cells are 4-neighbors).
SkeletonGraph ring_skeleton(const GridWorld& world, int cx, int cy, int r) {
  SkeletonGraph sk(world.g.n());
  std::vector<std::pair<int, int>> ring;
  for (int x = cx - r; x < cx + r; ++x) ring.push_back({x, cy - r});
  for (int y = cy - r; y < cy + r; ++y) ring.push_back({cx + r, y});
  for (int x = cx + r; x > cx - r; --x) ring.push_back({x, cy + r});
  for (int y = cy + r; y > cy - r; --y) ring.push_back({cx - r, y});
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const auto [x1, y1] = ring[i];
    const auto [x2, y2] = ring[(i + 1) % ring.size()];
    sk.add_edge(world.id(x1, y1), world.id(x2, y2));
  }
  return sk;
}

Params grid_params() {
  Params p;
  p.k = 2;
  p.l = 2;
  return p;
}

// For an isolated ring skeleton BOTH sides qualify as pockets (this is
// what makes the annulus case work: the hole-side annulus is a pocket
// too). Select the pocket containing a given witness node.
const Pocket* pocket_containing(const std::vector<Pocket>& pockets, int node) {
  for (const Pocket& p : pockets) {
    if (std::find(p.interior.begin(), p.interior.end(), node) !=
        p.interior.end()) {
      return &p;
    }
  }
  return nullptr;
}

TEST(FindPockets, RingEnclosesInterior) {
  const GridWorld world = make_grid(11, 11);
  const SkeletonGraph sk = ring_skeleton(world, 5, 5, 3);
  const auto pockets = find_pockets(world.g, sk);
  // Both the enclosed interior and the outside are ring-bounded pockets.
  ASSERT_EQ(pockets.size(), 2u);
  const Pocket* inner = pocket_containing(pockets, world.id(5, 5));
  ASSERT_NE(inner, nullptr);
  // Interior: Chebyshev <= 2 around (5,5) -> 25 cells.
  EXPECT_EQ(inner->interior.size(), 25u);
  // Boundary: all 24 ring cells — corners are not pocket-adjacent but the
  // gap-closing expansion pulls them in to complete the loop.
  EXPECT_EQ(inner->boundary.size(), 24u);
  for (int v : inner->interior) {
    const int x = v % 11, y = v / 11;
    EXPECT_LE(std::max(std::abs(x - 5), std::abs(y - 5)), 2);
  }
  const Pocket* outer = pocket_containing(pockets, world.id(0, 0));
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->interior.size(), 121u - 24u - 25u);
}

TEST(FindPockets, PathEnclosesNothing) {
  const GridWorld world = make_grid(9, 9);
  SkeletonGraph sk(world.g.n());
  for (int x = 0; x < 8; ++x) sk.add_edge(world.id(x, 4), world.id(x + 1, 4));
  EXPECT_TRUE(find_pockets(world.g, sk).empty());
}

TEST(FindPockets, CapacityMismatchThrows) {
  const GridWorld world = make_grid(4, 4);
  SkeletonGraph sk(3);
  EXPECT_THROW(find_pockets(world.g, sk), std::invalid_argument);
}

TEST(PocketIsFake, UniformInteriorPocketIsFake) {
  const GridWorld world = make_grid(11, 11);
  const SkeletonGraph sk = ring_skeleton(world, 5, 5, 3);
  const Params p = grid_params();
  const IndexData idx = compute_index(world.g, p);
  const auto pockets = find_pockets(world.g, sk);
  const Pocket* inner = pocket_containing(pockets, world.id(5, 5));
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(pocket_is_fake(*inner, idx, p));
  // The outside pocket reaches the grid rim whose nodes have clipped
  // k-hop balls: it reads as genuine (and is left alone).
  const Pocket* outer = pocket_containing(pockets, world.id(0, 0));
  ASSERT_NE(outer, nullptr);
  EXPECT_FALSE(pocket_is_fake(*outer, idx, p));
}

TEST(PocketIsFake, PocketAroundAHoleIsGenuine) {
  // 15x15 grid with a 5x5 hole in the middle; ring skeleton at radius 5.
  std::set<std::pair<int, int>> holes;
  for (int y = 5; y <= 9; ++y) {
    for (int x = 5; x <= 9; ++x) holes.insert({x, y});
  }
  const GridWorld world = make_grid(15, 15, holes);
  const SkeletonGraph sk = ring_skeleton(world, 7, 7, 5);
  const Params p = grid_params();
  const IndexData idx = compute_index(world.g, p);
  const auto pockets = find_pockets(world.g, sk);
  // The annulus between the ring and the hole (hole cells are absent
  // from the graph's edge set, so they form no pocket of their own).
  const Pocket* annulus = pocket_containing(pockets, world.id(7, 4));
  ASSERT_NE(annulus, nullptr);
  EXPECT_EQ(annulus->interior.size(), 56u);  // cheb 3..4 around (7,7)
  EXPECT_FALSE(pocket_is_fake(*annulus, idx, p));
}

TEST(PocketIsFake, TinyPocketAlwaysFake) {
  const GridWorld world = make_grid(7, 7);
  const SkeletonGraph sk = ring_skeleton(world, 3, 3, 1);  // encloses 1 cell
  const Params p = grid_params();
  const IndexData idx = compute_index(world.g, p);
  const auto pockets = find_pockets(world.g, sk);
  const Pocket* inner = pocket_containing(pockets, world.id(3, 3));
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->interior.size(), 1u);
  EXPECT_TRUE(pocket_is_fake(*inner, idx, p));
}

TEST(CleanupLoops, FakeLoopIsOpened) {
  const GridWorld world = make_grid(11, 11);
  SkeletonGraph coarse = ring_skeleton(world, 5, 5, 3);
  // Attach two branches so the resolution has endpoints to reconnect.
  coarse.add_edge(world.id(2, 5), world.id(1, 5));
  coarse.add_edge(world.id(1, 5), world.id(0, 5));
  coarse.add_edge(world.id(8, 5), world.id(9, 5));
  coarse.add_edge(world.id(9, 5), world.id(10, 5));
  const Params p = grid_params();
  const IndexData idx = compute_index(world.g, p);
  const CleanupResult r = cleanup_loops(world.g, idx, std::move(coarse), p);
  EXPECT_EQ(r.fake_loops_removed, 1);
  EXPECT_EQ(r.graph.cycle_rank(), 0);
  EXPECT_EQ(r.graph.component_count(), 1);
  // Both branch tips still connected through the old pocket.
  EXPECT_TRUE(r.graph.has_node(world.id(0, 5)));
  EXPECT_TRUE(r.graph.has_node(world.id(10, 5)));
}

TEST(CleanupLoops, GenuineLoopSurvives) {
  std::set<std::pair<int, int>> holes;
  for (int y = 5; y <= 9; ++y) {
    for (int x = 5; x <= 9; ++x) holes.insert({x, y});
  }
  const GridWorld world = make_grid(15, 15, holes);
  SkeletonGraph coarse = ring_skeleton(world, 7, 7, 5);
  const Params p = grid_params();
  const IndexData idx = compute_index(world.g, p);
  const CleanupResult r = cleanup_loops(world.g, idx, std::move(coarse), p);
  EXPECT_EQ(r.fake_loops_removed, 0);
  EXPECT_EQ(r.graph.cycle_rank(), 1);
}

TEST(CleanupLoops, IsolatedFakeLoopCollapsesToPath) {
  const GridWorld world = make_grid(11, 11);
  SkeletonGraph coarse = ring_skeleton(world, 5, 5, 3);  // no branches
  const Params p = grid_params();
  const IndexData idx = compute_index(world.g, p);
  const CleanupResult r = cleanup_loops(world.g, idx, std::move(coarse), p);
  EXPECT_EQ(r.fake_loops_removed, 1);
  EXPECT_EQ(r.graph.cycle_rank(), 0);
  EXPECT_GE(r.graph.node_count(), 2);
  EXPECT_EQ(r.graph.component_count(), 1);
}

TEST(CleanupLoops, AdjacentFakeLoopsAreMerged) {
  // Two rings sharing a vertical side: nodes on the shared side belong to
  // both fake loops and must be demoted (merge), then the merged pocket
  // is resolved; no cycles remain.
  const GridWorld world = make_grid(17, 11);
  SkeletonGraph coarse(world.g.n());
  const SkeletonGraph ring1 = ring_skeleton(world, 5, 5, 3);
  const SkeletonGraph ring2 = ring_skeleton(world, 11, 5, 3);
  for (int v : ring1.nodes()) {
    for (int w : ring1.neighbors(v)) coarse.add_edge(v, w);
  }
  for (int v : ring2.nodes()) {
    for (int w : ring2.neighbors(v)) coarse.add_edge(v, w);
  }
  const Params p = grid_params();
  const IndexData idx = compute_index(world.g, p);
  const CleanupResult r = cleanup_loops(world.g, idx, std::move(coarse), p);
  EXPECT_GE(r.merge_rounds, 1);
  EXPECT_EQ(r.graph.cycle_rank(), 0);
  EXPECT_EQ(r.graph.component_count(), 1);
}

}  // namespace
}  // namespace skelex::core
