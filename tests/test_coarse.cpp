#include "core/coarse.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/identify.h"
#include "core/index.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

namespace skelex::core {
namespace {

TEST(ClusterWithinHops, DirectNeighborsMerge) {
  net::Graph g(6);
  for (int i = 0; i < 5; ++i) g.add_edge(i, i + 1);
  const auto clusters = cluster_within_hops(g, {0, 1, 4}, 1);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(clusters[1], (std::vector<int>{4}));
}

TEST(ClusterWithinHops, GapBridging) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  // Nodes 0, 2, 6: 0 and 2 are 2 hops apart (bridged at merge_hops=2);
  // 6 is 4 hops from 2 (separate).
  auto clusters = cluster_within_hops(g, {0, 2, 6}, 2);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(clusters[1], (std::vector<int>{6}));
  // merge_hops=4 bridges everything.
  clusters = cluster_within_hops(g, {0, 2, 6}, 4);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<int>{0, 2, 6}));
}

TEST(ClusterWithinHops, Validation) {
  net::Graph g(3);
  EXPECT_THROW(cluster_within_hops(g, {0}, 0), std::invalid_argument);
}

TEST(Coarse, PathGraphConnectsTwoSites) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  Params p;
  IndexData idx;
  idx.khop_size.assign(7, 0);
  idx.centrality.assign(7, 0.0);
  idx.index = {0, 0, 0, 5, 0, 0, 0};  // segment node 3 wins
  const VoronoiResult vor = build_voronoi(g, {0, 6}, p);
  const CoarseSkeleton coarse = build_coarse_skeleton(g, idx, vor, p);
  // Band 0-1 realized through node 3: the whole path is skeleton.
  EXPECT_EQ(coarse.bands.size(), 1u);
  EXPECT_EQ(coarse.realized_bands, (std::vector<int>{0}));
  EXPECT_EQ(coarse.connectors, (std::vector<int>{3}));
  EXPECT_EQ(coarse.graph.node_count(), 7);
  EXPECT_EQ(coarse.graph.component_count(), 1);
  EXPECT_EQ(coarse.graph.cycle_rank(), 0);
}

TEST(Coarse, RingGraphTwoSitesTwoBands) {
  // A 16-cycle with sites at opposite ends: the two cells meet on BOTH
  // arcs -> two bands (far enough apart not to be cluster-merged) -> the
  // realized skeleton must keep the ring topology (this is the
  // two-cells-around-a-hole case).
  net::Graph g(16);
  for (int i = 0; i < 16; ++i) g.add_edge(i, (i + 1) % 16);
  Params p;
  const VoronoiResult vor = build_voronoi(g, {0, 8}, p);
  IndexData idx;
  idx.khop_size.assign(16, 0);
  idx.centrality.assign(16, 0.0);
  idx.index.assign(16, 1.0);
  const CoarseSkeleton coarse = build_coarse_skeleton(g, idx, vor, p);
  EXPECT_EQ(coarse.bands.size(), 2u);
  EXPECT_EQ(coarse.realized_bands.size(), 2u);
  EXPECT_EQ(coarse.graph.cycle_rank(), 1);
  EXPECT_EQ(coarse.graph.component_count(), 1);
}

TEST(Coarse, SingleSiteIsItsOwnSkeleton) {
  net::Graph g(5);
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  Params p;
  const VoronoiResult vor = build_voronoi(g, {2}, p);
  IndexData idx;
  idx.khop_size.assign(5, 0);
  idx.centrality.assign(5, 0.0);
  idx.index.assign(5, 1.0);
  const CoarseSkeleton coarse = build_coarse_skeleton(g, idx, vor, p);
  EXPECT_TRUE(coarse.bands.empty());
  EXPECT_EQ(coarse.graph.node_count(), 1);
  EXPECT_TRUE(coarse.graph.has_node(2));
}

// On realistic networks: the coarse skeleton connects all sites of a
// connected network, and realized bands never exceed total bands.
TEST(Coarse, RealNetworkInvariants) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1200;
  spec.target_avg_deg = 7.0;
  spec.seed = 19;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::smile(), spec);
  const net::Graph& g = sc.graph;
  Params p;
  const IndexData idx = compute_index(g, p);
  const VoronoiResult vor =
      build_voronoi(g, identify_critical_nodes(g, idx, p), p);
  const CoarseSkeleton coarse = build_coarse_skeleton(g, idx, vor, p);

  EXPECT_EQ(coarse.graph.component_count(), 1);
  for (int s : vor.sites) EXPECT_TRUE(coarse.graph.has_node(s));
  EXPECT_LE(coarse.realized_bands.size(), coarse.bands.size());
  EXPECT_EQ(coarse.connectors.size(), coarse.realized_bands.size());
  // Every skeleton edge is a network link.
  for (int v : coarse.graph.nodes()) {
    for (int w : coarse.graph.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(v, w));
    }
  }
  // Triangles reference valid bands.
  for (const NerveTriangle& t : coarse.triangles) {
    for (int b : {t.band_ab, t.band_bc, t.band_ac}) {
      ASSERT_GE(b, 0);
      ASSERT_LT(b, static_cast<int>(coarse.bands.size()));
    }
  }
}

// The nerve selection realizes a spanning structure: removing ALL
// non-tree bands can only reduce cycles, never connectivity.
TEST(Coarse, BandsFormSpanningStructureOverSites) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1500;
  spec.target_avg_deg = 7.0;
  spec.seed = 23;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::two_holes(), spec);
  Params p;
  const IndexData idx = compute_index(sc.graph, p);
  const VoronoiResult vor =
      build_voronoi(sc.graph, identify_critical_nodes(sc.graph, idx, p), p);
  const CoarseSkeleton coarse = build_coarse_skeleton(sc.graph, idx, vor, p);

  // Union-find over sites using realized bands only: one component.
  std::vector<int> uf(vor.sites.size());
  for (std::size_t i = 0; i < uf.size(); ++i) uf[i] = static_cast<int>(i);
  const auto find = [&](int x) {
    while (uf[static_cast<std::size_t>(x)] != x) x = uf[static_cast<std::size_t>(x)];
    return x;
  };
  for (int e : coarse.realized_bands) {
    uf[static_cast<std::size_t>(find(coarse.bands[static_cast<std::size_t>(e)].site_a))] =
        find(coarse.bands[static_cast<std::size_t>(e)].site_b);
  }
  std::set<int> roots;
  for (std::size_t i = 0; i < uf.size(); ++i) roots.insert(find(static_cast<int>(i)));
  EXPECT_EQ(roots.size(), 1u);
}

}  // namespace
}  // namespace skelex::core
