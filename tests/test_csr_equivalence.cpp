// CSR refactor equivalence: the flat CSR kernels (net/csr.h), the
// adjacency-list wrappers built on them (net/bfs.h, net/khop.h,
// net/graph.h), and independent reference oracles written directly
// against Graph::neighbors() must all agree node-for-node on randomized
// UDG and QUDG networks. A final golden test pins the complete
// extract_skeleton output on the Fig. 1 Window scenario to the exact
// fingerprint recorded before the CSR refactor — the refactor's
// "identical results, only faster" contract, checked bitwise.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <queue>
#include <vector>

#include "core/fingerprint.h"
#include "core/pipeline.h"
#include "deploy/rng.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"
#include "net/csr.h"
#include "net/graph.h"
#include "net/khop.h"
#include "radio/radio_model.h"

namespace {

using namespace skelex;

// --- reference oracles (std::queue, straight off Graph::neighbors) ----------

std::vector<int> oracle_bfs(const net::Graph& g, int source, int max_depth) {
  std::vector<int> dist(static_cast<std::size_t>(g.n()), net::kUnreached);
  std::queue<int> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    const int d = dist[static_cast<std::size_t>(v)];
    if (max_depth >= 0 && d >= max_depth) continue;
    for (int w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == net::kUnreached) {
        dist[static_cast<std::size_t>(w)] = d + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

std::vector<int> oracle_khop_sizes(const net::Graph& g, int k) {
  std::vector<int> out(static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) {
    const std::vector<int> dist = oracle_bfs(g, v, k);
    int count = 0;
    for (int w = 0; w < g.n(); ++w) {
      if (w != v && dist[static_cast<std::size_t>(w)] != net::kUnreached) {
        ++count;
      }
    }
    out[static_cast<std::size_t>(v)] = count;
  }
  return out;
}

// Multi-source BFS with the documented tie-break: all sources start at
// distance 0 in `sources` order, so the FIFO order alone reproduces the
// first-to-reach / lowest-source-index rule.
net::MultiSourceBfs oracle_msbfs(const net::Graph& g,
                                 const std::vector<int>& sources) {
  net::MultiSourceBfs r;
  r.nearest.assign(static_cast<std::size_t>(g.n()), net::kUnreached);
  r.dist.assign(static_cast<std::size_t>(g.n()), net::kUnreached);
  r.parent.assign(static_cast<std::size_t>(g.n()), net::kUnreached);
  std::queue<int> q;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const int s = sources[i];
    r.nearest[static_cast<std::size_t>(s)] = static_cast<int>(i);
    r.dist[static_cast<std::size_t>(s)] = 0;
    q.push(s);
  }
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int w : g.neighbors(v)) {
      if (r.dist[static_cast<std::size_t>(w)] == net::kUnreached) {
        r.dist[static_cast<std::size_t>(w)] =
            r.dist[static_cast<std::size_t>(v)] + 1;
        r.nearest[static_cast<std::size_t>(w)] =
            r.nearest[static_cast<std::size_t>(v)];
        r.parent[static_cast<std::size_t>(w)] = v;
        q.push(w);
      }
    }
  }
  return r;
}

std::vector<int> oracle_components(const net::Graph& g) {
  std::vector<int> label(static_cast<std::size_t>(g.n()), -1);
  int next = 0;
  for (int s = 0; s < g.n(); ++s) {
    if (label[static_cast<std::size_t>(s)] != -1) continue;
    label[static_cast<std::size_t>(s)] = next;
    std::queue<int> q;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int w : g.neighbors(v)) {
        if (label[static_cast<std::size_t>(w)] == -1) {
          label[static_cast<std::size_t>(w)] = next;
          q.push(w);
        }
      }
    }
    ++next;
  }
  return label;
}

// --- randomized networks -----------------------------------------------------

net::Graph random_network(std::uint64_t seed, bool qudg) {
  deploy::Rng rng(seed);
  const int n = 150 + static_cast<int>(rng.next_below(150));
  std::vector<geom::Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pos.push_back({rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)});
  }
  const double range = rng.uniform(8.0, 14.0);
  if (!qudg) return net::build_udg(std::move(pos), range);
  const radio::QuasiUnitDiskModel model(range, 0.4, 0.3);
  deploy::Rng link_rng = rng.split();
  return net::build_graph(std::move(pos), model, link_rng);
}

class CsrEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrEquivalenceTest, CsrViewMatchesAdjacency) {
  for (bool qudg : {false, true}) {
    const net::Graph g = random_network(GetParam(), qudg);
    const net::CsrGraph& csr = g.csr();
    ASSERT_EQ(csr.n(), g.n());
    EXPECT_EQ(csr.edge_count(), g.edge_count());
    for (int v = 0; v < g.n(); ++v) {
      const auto span = csr.neighbors(v);
      const auto adj = g.neighbors(v);
      ASSERT_EQ(span.size(), adj.size()) << "node " << v;
      EXPECT_EQ(csr.degree(v), static_cast<int>(adj.size()));
      // Neighbor ORDER must match too — traversal tie-breaks depend on it.
      for (std::size_t i = 0; i < adj.size(); ++i) {
        EXPECT_EQ(span[i], adj[i]) << "node " << v << " slot " << i;
      }
    }
  }
}

TEST_P(CsrEquivalenceTest, BfsMatchesOracleAndWrapper) {
  for (bool qudg : {false, true}) {
    const net::Graph g = random_network(GetParam(), qudg);
    const net::CsrGraph& csr = g.csr();
    net::Workspace ws;
    for (int depth : {-1, 0, 3}) {
      for (int source : {0, g.n() / 2, g.n() - 1}) {
        const std::vector<int> want = oracle_bfs(g, source, depth);
        net::bfs_distances(csr, source, ws, depth);
        EXPECT_EQ(ws.dist, want) << "csr, source " << source;
        EXPECT_EQ(net::bfs_distances(g, source, depth), want)
            << "wrapper, source " << source;
      }
    }
  }
}

TEST_P(CsrEquivalenceTest, MultiSourceBfsMatchesOracleAndWrapper) {
  for (bool qudg : {false, true}) {
    const net::Graph g = random_network(GetParam(), qudg);
    const net::CsrGraph& csr = g.csr();
    net::Workspace ws;
    // Deliberately not sorted: tie-breaking is by position in `sources`.
    const std::vector<int> sources = {g.n() - 1, 0, g.n() / 3, g.n() / 2};
    const net::MultiSourceBfs want = oracle_msbfs(g, sources);
    net::multi_source_bfs(csr, sources, ws);
    EXPECT_EQ(ws.nearest, want.nearest);
    EXPECT_EQ(ws.dist, want.dist);
    EXPECT_EQ(ws.parent, want.parent);
    const net::MultiSourceBfs got = net::multi_source_bfs(g, sources);
    EXPECT_EQ(got.nearest, want.nearest);
    EXPECT_EQ(got.dist, want.dist);
    EXPECT_EQ(got.parent, want.parent);
  }
}

TEST_P(CsrEquivalenceTest, ComponentsMatchOracleAndWrapper) {
  for (bool qudg : {false, true}) {
    const net::Graph g = random_network(GetParam(), qudg);
    net::Workspace ws;
    const std::vector<int> want = oracle_components(g);
    const net::Components from_csr = net::connected_components(g.csr(), ws);
    const net::Components from_adj = net::connected_components(g);
    EXPECT_EQ(from_csr.label, want);
    EXPECT_EQ(from_adj.label, want);
    EXPECT_EQ(from_csr.count, from_adj.count);
    EXPECT_EQ(from_csr.size, from_adj.size);
    EXPECT_EQ(from_csr.largest, from_adj.largest);
  }
}

TEST_P(CsrEquivalenceTest, KhopAndCentralityMatchOracleAndWrapper) {
  for (bool qudg : {false, true}) {
    const net::Graph g = random_network(GetParam(), qudg);
    const net::CsrGraph& csr = g.csr();
    net::Workspace ws;
    for (int k : {1, 2, 4}) {
      const std::vector<int> want = oracle_khop_sizes(g, k);
      std::vector<int> got;
      net::khop_sizes(csr, k, ws, got);
      EXPECT_EQ(got, want) << "csr, k=" << k;
      EXPECT_EQ(net::khop_sizes(g, k), want) << "wrapper, k=" << k;

      // l-centrality: CSR vs wrapper, bitwise (same summation order).
      std::vector<double> cent_csr;
      net::l_centrality(csr, want, 2, false, ws, cent_csr);
      const std::vector<double> cent_adj = net::l_centrality(g, want, 2, false);
      ASSERT_EQ(cent_csr.size(), cent_adj.size());
      for (std::size_t i = 0; i < cent_csr.size(); ++i) {
        EXPECT_EQ(cent_csr[i], cent_adj[i]) << "node " << i << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 0xfeedu));

// --- golden fingerprint ------------------------------------------------------
// FNV-1a over every field of the extract_skeleton output on the Fig. 1
// Window scenario. The constant below was recorded from the pre-CSR
// pointer-chasing implementation; the refactored pipeline must reproduce
// it bit for bit (distances, tie-breaks, pruning order, floating-point
// index values — everything).

// The hasher and field order moved to core/fingerprint.h
// (core::result_fingerprint) so the memoized pipeline and the service can
// assert the same bitwise identity; this test pins the golden constant.

TEST(GoldenFingerprint, WindowScenarioBitwiseStable) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 5.96;
  spec.seed = 7;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::window(), spec);
  ASSERT_EQ(sc.graph.n(), 2600);
  ASSERT_EQ(sc.graph.edge_count(), 7748);
  const core::SkeletonResult r =
      core::extract_skeleton(sc.graph, core::Params{});
  EXPECT_EQ(core::result_fingerprint(r), 0x75302e0b3de2a7f4ull)
      << "extract_skeleton output changed bitwise on the pinned Window "
         "scenario; if the change is intentional, re-record the constant "
         "(core/fingerprint.h documents the field order).";
}

// --- large-n overflow safety -------------------------------------------------
// The SoA kernels keep their visitation stamps in u32 and their
// frontiers in flat int queues; a W x H 4-neighbor lattice pushes node
// and edge counts past 2^16 while keeping O(n + m) oracles (hop
// distance from a corner is the Manhattan distance, and the generic
// queue oracles above stay linear), so the overflow check runs in
// test-suite time rather than oracle-quadratic time.

TEST(LargeN, LatticeKernelsPast64kNodesAndEdges) {
  const int W = 300, H = 220;  // 66,000 nodes; 131,480 edges — both > 2^16
  net::Graph g(W * H);
  const auto id = [W](int x, int y) { return y * W + x; };
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      if (x + 1 < W) g.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < H) g.add_edge(id(x, y), id(x, y + 1));
    }
  }
  g.finalize();
  ASSERT_GT(g.n(), 1 << 16);
  ASSERT_GT(g.edge_count(), static_cast<long long>(1) << 16);
  const net::CsrGraph& csr = g.csr();
  net::Workspace ws;

  // Single-source BFS from the corner == Manhattan distance.
  net::bfs_distances(csr, 0, ws);
  int bad = 0;
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      if (ws.dist[static_cast<std::size_t>(id(x, y))] != x + y) ++bad;
    }
  }
  EXPECT_EQ(bad, 0) << "corner BFS disagrees with Manhattan distance";

  // Multi-source from opposite corners, against the queue oracle.
  const std::vector<int> sources = {id(0, 0), id(W - 1, H - 1)};
  const net::MultiSourceBfs want = oracle_msbfs(g, sources);
  net::multi_source_bfs(csr, sources, ws);
  EXPECT_EQ(ws.nearest, want.nearest);
  EXPECT_EQ(ws.dist, want.dist);
  EXPECT_EQ(ws.parent, want.parent);

  // One connected component, every node labelled.
  const net::Components comps = net::connected_components(csr, ws);
  EXPECT_EQ(comps.count, 1);
  EXPECT_EQ(comps.size[0], W * H);

  // k-hop counts: an interior node (>= k from every border) sees the
  // Manhattan ball minus itself, |{(dx,dy) : 0 < |dx|+|dy| <= k}| =
  // 2k(k+1). Borders are checked against a per-node oracle BFS on a
  // sampled set (the all-nodes oracle would be quadratic here).
  const int k = 4;
  std::vector<int> khop;
  net::khop_sizes(csr, k, ws, khop);
  bad = 0;
  for (int y = k; y < H - k; ++y) {
    for (int x = k; x < W - k; ++x) {
      if (khop[static_cast<std::size_t>(id(x, y))] != 2 * k * (k + 1)) ++bad;
    }
  }
  EXPECT_EQ(bad, 0) << "interior k-hop counts disagree with 2k(k+1)";
  for (const int v : {id(0, 0), id(W - 1, 0), id(3, 0), id(0, H / 2),
                      id(W - 1, H - 1), id(W / 2, H - 1)}) {
    const std::vector<int> dist = oracle_bfs(g, v, k);
    int count = 0;
    for (int w = 0; w < g.n(); ++w) {
      if (w != v && dist[static_cast<std::size_t>(w)] != net::kUnreached) {
        ++count;
      }
    }
    EXPECT_EQ(khop[static_cast<std::size_t>(v)], count) << "border node " << v;
  }
}

}  // namespace
