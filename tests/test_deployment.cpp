#include "deploy/deployment.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "deploy/scenario.h"
#include "exec/thread_pool.h"
#include "geometry/shapes.h"
#include "net/graph.h"

namespace skelex::deploy {
namespace {

using geom::Region;
using geom::Vec2;

TEST(UniformInRegion, AllPointsInside) {
  const Region r = geom::shapes::smile();
  Rng rng(3);
  const auto pts = uniform_in_region(r, 500, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const Vec2& p : pts) EXPECT_TRUE(r.contains(p)) << p;
}

TEST(UniformInRegion, Deterministic) {
  const Region r = geom::shapes::rect();
  Rng a(5), b(5);
  EXPECT_EQ(uniform_in_region(r, 50, a), uniform_in_region(r, 50, b));
}

TEST(UniformInRegion, CoversTheWholeRegion) {
  // Quadrant counts of a rect deployment should be balanced.
  const Region r = geom::shapes::rect(100, 60);
  Rng rng(8);
  const auto pts = uniform_in_region(r, 4000, rng);
  int q[4] = {0, 0, 0, 0};
  for (const Vec2& p : pts) {
    ++q[(p.x > 50 ? 1 : 0) + (p.y > 30 ? 2 : 0)];
  }
  for (int c : q) EXPECT_NEAR(c, 1000, 120);
}

TEST(UniformInRegion, RejectsNegativeCount) {
  Rng rng(1);
  EXPECT_THROW(uniform_in_region(geom::shapes::rect(), -1, rng),
               std::invalid_argument);
}

TEST(SkewedInRegion, SplitDensityIsSkewed) {
  const Region r = geom::shapes::rect(100, 100);
  Rng rng(4);
  const auto pts = skewed_in_region(
      r, 4000, vertical_split_density(50.0, 0.25, 1.0), rng);
  int below = 0;
  for (const Vec2& p : pts) {
    if (p.y < 50) ++below;
  }
  // Expected fraction below: 0.25 / 1.25 = 0.2.
  EXPECT_NEAR(below / 4000.0, 0.2, 0.03);
}

TEST(SkewedInRegion, HorizontalSplit) {
  const Region r = geom::shapes::rect(100, 100);
  Rng rng(4);
  const auto pts = skewed_in_region(
      r, 4000, horizontal_split_density(50.0, 0.65, 1.0), rng);
  int left = 0;
  for (const Vec2& p : pts) {
    if (p.x < 50) ++left;
  }
  EXPECT_NEAR(left / 4000.0, 0.65 / 1.65, 0.03);
}

TEST(JitteredGrid, PointsInsideAndRoughCount) {
  const Region r = geom::shapes::window();
  Rng rng(6);
  const double pitch = std::sqrt(r.area() / 2000.0);
  const auto pts = jittered_grid_in_region(r, pitch, 0.35, rng);
  for (const Vec2& p : pts) EXPECT_TRUE(r.contains(p));
  EXPECT_NEAR(static_cast<double>(pts.size()), 2000.0, 200.0);
}

TEST(JitteredGrid, RejectsBadPitch) {
  Rng rng(1);
  EXPECT_THROW(jittered_grid_in_region(geom::shapes::rect(), 0.0, 0.1, rng),
               std::invalid_argument);
}

TEST(RangeForTargetDegree, MatchesAnalyticFormula) {
  const Region r = geom::shapes::rect(100, 100);
  const double range = range_for_target_degree(r, 1001, std::numbers::pi);
  // deg = (n-1) * pi R^2 / A  =>  R = sqrt(deg * A / (pi (n-1))).
  EXPECT_NEAR(range, std::sqrt(10000.0 / 1000.0), 1e-9);
  EXPECT_THROW(range_for_target_degree(r, 1, 5.0), std::invalid_argument);
  EXPECT_THROW(range_for_target_degree(r, 100, -1.0), std::invalid_argument);
}

TEST(CountForTargetDegree, InvertsRangeFormula) {
  const Region r = geom::shapes::rect(100, 100);
  const double deg = 6.0;
  const int n = 2000;
  const double range = range_for_target_degree(r, n, deg);
  EXPECT_NEAR(count_for_target_degree(r, range, deg), n, 1);
}

TEST(Scenario, CalibratedRangeHitsTargetDegree) {
  const Region r = geom::shapes::window();
  ScenarioSpec spec;
  spec.target_nodes = 1500;
  spec.target_avg_deg = 7.0;
  spec.seed = 2;
  const Scenario s = make_udg_scenario(r, spec);
  // Largest component keeps nearly everything at degree 7, and the
  // calibration hits the degree on the full deployment; the component's
  // degree may differ slightly.
  EXPECT_GT(s.graph.n(), 1200);
  EXPECT_NEAR(s.graph.avg_degree(), 7.0, 0.5);
  EXPECT_TRUE(s.graph.has_positions());
}

TEST(Scenario, UniformStyleWorks) {
  ScenarioSpec spec;
  spec.target_nodes = 800;
  spec.target_avg_deg = 10.0;
  spec.style = Style::kUniform;
  spec.seed = 3;
  const Scenario s = make_udg_scenario(geom::shapes::disk(), spec);
  EXPECT_GT(s.graph.n(), 500);
  EXPECT_NEAR(s.graph.avg_degree(), 10.0, 1.2);
}

TEST(CalibrateRange, ExactOnKnownConfiguration) {
  // 3 collinear points spaced 1 apart: avg degree 2/3 at r in [1,2) and
  // 2 at r >= 2. Calibrating for degree 1 must land in [1, 2).
  std::vector<Vec2> pts{{0, 0}, {1, 0}, {2, 0}};
  const double r = calibrate_range(pts, 1.0);
  EXPECT_GE(r, 1.0);
  EXPECT_LT(r, 2.0);
}

// --- counter-based grid (the large-n deployment path) ------------------------

TEST(CounterGrid, PointsInsideAndRoughCount) {
  const Region r = geom::shapes::window();
  const double pitch = std::sqrt(r.area() / 2000.0);
  const auto pts = counter_jittered_grid_in_region(r, pitch, 0.35, 6);
  for (const Vec2& p : pts) EXPECT_TRUE(r.contains(p));
  EXPECT_NEAR(static_cast<double>(pts.size()), 2000.0, 200.0);
  EXPECT_THROW(counter_jittered_grid_in_region(r, 0.0, 0.1, 1),
               std::invalid_argument);
}

TEST(CounterGrid, BitIdenticalAcrossPoolSizesPast64kCells) {
  // A grid with > 2^16 cells (271 x 271 = 73,441), so the chunked path
  // crosses the 16-bit boundary with a row count not divisible by any
  // of the pool sizes. The pure-counter draws make every point a
  // function of (seed, row, column) only — the sequence must come out
  // byte-identical serially and at any worker count.
  const Region r = geom::shapes::rect(300, 300);
  const double pitch = 300.0 / 271.0;
  exec::ThreadPool serial(1);
  const auto want = counter_jittered_grid_in_region(r, pitch, 0.4, 99, &serial);
  EXPECT_GT(static_cast<int>(want.size()), 1 << 16);
  for (int threads : {2, 8}) {
    exec::ThreadPool pool(threads);
    const auto got =
        counter_jittered_grid_in_region(r, pitch, 0.4, 99, &pool);
    ASSERT_EQ(got.size(), want.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i].x, want[i].x) << "threads=" << threads << " i=" << i;
      ASSERT_EQ(got[i].y, want[i].y) << "threads=" << threads << " i=" << i;
    }
  }
  // The implicit-pool path (the size heuristic picks the shared pool)
  // must agree with the explicit-pool runs too.
  const auto implicit = counter_jittered_grid_in_region(r, pitch, 0.4, 99);
  ASSERT_EQ(implicit.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(implicit[i].x, want[i].x) << "i=" << i;
    ASSERT_EQ(implicit[i].y, want[i].y) << "i=" << i;
  }
}

TEST(CounterGrid, ScenarioOptInSelectsCounterSampler) {
  const Region r = geom::shapes::window();
  ScenarioSpec spec;
  spec.target_nodes = 900;
  spec.seed = 21;
  Rng rng(spec.seed);
  const double pitch = std::sqrt(r.area() / spec.target_nodes);
  spec.counter_sampling = true;
  const auto via_spec = scenario_positions(r, spec, rng);
  const auto direct =
      counter_jittered_grid_in_region(r, pitch, spec.jitter, spec.seed);
  EXPECT_EQ(via_spec.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(via_spec[i].x, direct[i].x) << i;
    ASSERT_EQ(via_spec[i].y, direct[i].y) << i;
  }
  // And the default stays on the stateful sampler (a different set).
  spec.counter_sampling = false;
  Rng rng2(spec.seed);
  const auto stateful = scenario_positions(r, spec, rng2);
  Rng rng3(spec.seed);
  EXPECT_EQ(stateful, jittered_grid_in_region(r, pitch, spec.jitter, rng3));
}

}  // namespace
}  // namespace skelex::deploy
