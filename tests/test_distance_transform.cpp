#include "baseline/distance_transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"

namespace skelex::baseline {
namespace {

// Hand-built boundary info for synthetic graphs: every listed node is a
// boundary node on ring 0 with the given arc positions.
BoundaryInfo make_info(int n, const std::vector<std::pair<int, double>>& nodes,
                       double perimeter) {
  BoundaryInfo info;
  info.is_boundary.assign(static_cast<std::size_t>(n), 0);
  info.ring_perimeter.push_back(perimeter);
  for (const auto& [node, arc] : nodes) {
    info.nodes.push_back({node, 0, arc});
    info.is_boundary[static_cast<std::size_t>(node)] = 1;
  }
  return info;
}

TEST(DistanceTransform, DistMatchesMultiSourceBfs) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  const BoundaryInfo info = make_info(7, {{0, 0.0}, {6, 50.0}}, 100.0);
  const DistanceTransform dt = boundary_distance_transform(g, info);
  const auto bfs = net::multi_source_bfs(g, {0, 6});
  EXPECT_EQ(dt.dist, bfs.dist);
}

TEST(DistanceTransform, WitnessesContainTheNearestBoundaryNode) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  const BoundaryInfo info = make_info(7, {{0, 0.0}, {6, 50.0}}, 100.0);
  const DistanceTransform dt = boundary_distance_transform(g, info);
  // Node 1 is nearest to 0 only.
  ASSERT_EQ(dt.witnesses[1].size(), 1u);
  EXPECT_EQ(dt.witnesses[1][0].node, 0);
  // Node 3 is equidistant: both witnesses (arc positions far apart).
  ASSERT_EQ(dt.witnesses[3].size(), 2u);
}

TEST(DistanceTransform, MergesSameFeatureWitnesses) {
  // Two boundary nodes almost at the same arc position: one feature.
  net::Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const BoundaryInfo info = make_info(5, {{0, 10.0}, {1, 11.5}}, 100.0);
  TransformParams params;
  params.merge_eps = 8.0;
  const DistanceTransform dt = boundary_distance_transform(g, info, params);
  EXPECT_EQ(dt.witnesses[2].size(), 1u);  // merged into one feature
  EXPECT_EQ(dt.witnesses[4].size(), 1u);
}

TEST(DistanceTransform, KeepsDistinctFeatures) {
  net::Graph g(5);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const BoundaryInfo info = make_info(5, {{0, 10.0}, {1, 60.0}}, 100.0);
  const DistanceTransform dt = boundary_distance_transform(g, info);
  EXPECT_EQ(dt.witnesses[2].size(), 2u);
}

TEST(DistanceTransform, WitnessCapRespected) {
  // Star: center adjacent to many boundary nodes at distinct positions.
  net::Graph g(9);
  for (int i = 1; i < 9; ++i) g.add_edge(0, i);
  std::vector<std::pair<int, double>> nodes;
  for (int i = 1; i < 9; ++i) nodes.push_back({i, i * 40.0});
  const BoundaryInfo info = make_info(9, nodes, 400.0);
  TransformParams params;
  params.max_witnesses = 3;
  const DistanceTransform dt = boundary_distance_transform(g, info, params);
  EXPECT_LE(dt.witnesses[0].size(), 3u);
  EXPECT_GE(dt.witnesses[0].size(), 2u);
  EXPECT_THROW(boundary_distance_transform(g, info, TransformParams{0, 1.0}),
               std::invalid_argument);
}

TEST(DistanceTransform, RealNetworkWitnessesAreTrueNearest) {
  // On a corridor, the witness distance transform must agree with the
  // BFS distance, and each node's witnesses must include a boundary node
  // realizing that distance.
  deploy::ScenarioSpec spec;
  spec.target_nodes = 700;
  spec.target_avg_deg = 8.0;
  spec.seed = 51;
  const geom::Region region = geom::shapes::corridor(80.0, 16.0);
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const BoundaryInfo info = geometric_boundary(sc.graph, region, 2.0);
  ASSERT_FALSE(info.nodes.empty());
  const DistanceTransform dt = boundary_distance_transform(sc.graph, info);

  std::vector<int> sources;
  for (const BoundaryNode& b : info.nodes) sources.push_back(b.node);
  const auto bfs = net::multi_source_bfs(sc.graph, sources);
  EXPECT_EQ(dt.dist, bfs.dist);

  for (int v = 0; v < sc.graph.n(); ++v) {
    if (dt.dist[static_cast<std::size_t>(v)] <= 0) continue;
    ASSERT_FALSE(dt.witnesses[static_cast<std::size_t>(v)].empty()) << v;
    // At least one witness is at the BFS distance from v.
    bool found = false;
    for (const Witness& w : dt.witnesses[static_cast<std::size_t>(v)]) {
      const auto d = net::bfs_distances(sc.graph, v,
                                        dt.dist[static_cast<std::size_t>(v)]);
      if (d[static_cast<std::size_t>(w.node)] ==
          dt.dist[static_cast<std::size_t>(v)]) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "node " << v;
  }
}

}  // namespace
}  // namespace skelex::baseline
