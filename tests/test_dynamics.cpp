// Network dynamics: ChurnScript validation / digests / generation,
// DynamicTopology's Graph-plus-CSR lockstep under churn, and the
// compilation of a churn timeline onto FaultPlan + union-graph semantics
// for the engine.
#include "sim/dynamics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/protocols.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/csr.h"
#include "net/graph.h"
#include "sim/engine.h"
#include "sim/faults.h"

namespace skelex {
namespace {

deploy::Scenario small_scenario(int nodes, std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 9.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::disk(14.0), spec);
}

sim::ChurnScript::RandomSpec soak_spec(double range, int rounds) {
  sim::ChurnScript::RandomSpec spec;
  spec.rounds = rounds;
  spec.join_rate = 0.3;
  spec.leave_rate = 0.3;
  spec.link_add_rate = 0.5;
  spec.link_remove_rate = 0.5;
  spec.range = range;
  return spec;
}

// Elementwise equality of the incrementally maintained CSR against the
// from-scratch snapshot of the lockstep Graph.
void expect_lockstep(const sim::DynamicTopology& topo) {
  const net::CsrGraph oracle(topo.graph());
  const net::CsrGraph& csr = topo.csr();
  ASSERT_EQ(csr.n(), oracle.n());
  ASSERT_EQ(csr.edge_count(), oracle.edge_count());
  for (int v = 0; v < oracle.n(); ++v) {
    ASSERT_EQ(csr.degree(v), oracle.degree(v)) << "node " << v;
    const auto a = csr.neighbors(v);
    const auto b = oracle.neighbors(v);
    for (std::size_t i = 0; i < b.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "node " << v << " slot " << i;
    }
  }
}

TEST(ChurnScript, ValidatesEvents) {
  sim::ChurnScript s;
  sim::ChurnEvent e;
  e.round = -1;
  e.kind = sim::ChurnKind::kNodeLeave;
  e.node = 0;
  EXPECT_THROW(s.add(e), std::invalid_argument);
  e.round = 3;
  s.add(e);
  e.round = 2;  // rounds must be non-decreasing
  EXPECT_THROW(s.add(e), std::invalid_argument);
  sim::ChurnEvent link;
  link.round = 3;
  link.kind = sim::ChurnKind::kLinkAdd;
  link.u = 1;
  link.v = 1;
  EXPECT_THROW(s.add(link), std::invalid_argument);
  link.v = 2;
  s.add(link);
  EXPECT_EQ(s.horizon(), 4);
  EXPECT_EQ(s.at(3).size(), 2u);
  EXPECT_TRUE(s.at(0).empty());
}

TEST(ChurnScript, RandomIsDeterministicAndDigestDiscriminates) {
  const auto scn = small_scenario(250, 11);
  const auto spec = soak_spec(scn.range, 40);
  const sim::ChurnScript a = sim::ChurnScript::random(scn.graph, spec, 5);
  const sim::ChurnScript b = sim::ChurnScript::random(scn.graph, spec, 5);
  const sim::ChurnScript c = sim::ChurnScript::random(scn.graph, spec, 6);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  ASSERT_EQ(a.events().size(), b.events().size());
  // Every generated event references the evolving topology validly:
  // applying the whole script must never throw.
  sim::DynamicTopology topo(scn.graph);
  for (int round = 0; round < spec.rounds; ++round) {
    (void)topo.apply_round(a, round);
  }
  expect_lockstep(topo);
}

TEST(DynamicTopology, AppliesEventsAndReportsChanges) {
  net::Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  g.finalize();
  sim::DynamicTopology topo(g);
  ASSERT_EQ(topo.active_count(), 5);

  sim::ChurnEvent leave;
  leave.kind = sim::ChurnKind::kNodeLeave;
  leave.node = 2;
  sim::DynamicTopology::RoundChanges out;
  topo.apply(leave, &out);
  EXPECT_EQ(out.events, 1);
  EXPECT_FALSE(topo.is_active(2));
  EXPECT_EQ(topo.active_count(), 4);
  EXPECT_EQ(topo.csr().degree(2), 0);
  ASSERT_EQ(out.departed.size(), 1u);
  EXPECT_EQ(out.removed_edges.size(), 2u);  // {2,1} and {2,3}
  // Dirty seeds: the leaver and both former partners.
  EXPECT_NE(std::find(out.dirty.begin(), out.dirty.end(), 1), out.dirty.end());
  EXPECT_NE(std::find(out.dirty.begin(), out.dirty.end(), 3), out.dirty.end());
  expect_lockstep(topo);

  // The id stays reserved: n() is unchanged, the node is just inactive.
  EXPECT_EQ(topo.n(), 5);

  sim::ChurnEvent join;
  join.kind = sim::ChurnKind::kNodeJoin;
  join.node = 5;
  join.links = {0, 4};
  topo.apply(join);
  EXPECT_EQ(topo.n(), 6);
  EXPECT_TRUE(topo.is_active(5));
  EXPECT_TRUE(topo.graph().has_edge(5, 0));
  expect_lockstep(topo);

  // Errors: joins must not skip ids or link to inactive nodes; link
  // events need active endpoints.
  sim::ChurnEvent bad = join;
  bad.node = 9;
  EXPECT_THROW(topo.apply(bad), std::invalid_argument);
  bad = join;
  bad.node = 6;
  bad.links = {2};
  EXPECT_THROW(topo.apply(bad), std::invalid_argument);
  sim::ChurnEvent link;
  link.kind = sim::ChurnKind::kLinkAdd;
  link.u = 1;
  link.v = 2;
  EXPECT_THROW(topo.apply(link), std::invalid_argument);

  // Rejoin of a departed id reactivates it in place.
  sim::ChurnEvent back;
  back.kind = sim::ChurnKind::kNodeJoin;
  back.node = 2;
  back.links = {1};
  topo.apply(back);
  EXPECT_TRUE(topo.is_active(2));
  EXPECT_EQ(topo.active_count(), 6);
  expect_lockstep(topo);

  // The compact active view drops nobody now, but dropped node 2 before.
  std::vector<int> orig;
  const net::Graph compact = topo.active_subgraph(&orig);
  EXPECT_EQ(compact.n(), topo.active_count());
}

TEST(ChurnScript, FaultPlanWindowsMatchLinkTimeline) {
  sim::ChurnScript s;
  sim::ChurnEvent rm;
  rm.round = 3;
  rm.kind = sim::ChurnKind::kLinkRemove;
  rm.u = 0;
  rm.v = 1;
  s.add(rm);
  sim::ChurnEvent add;
  add.round = 7;
  add.kind = sim::ChurnKind::kLinkAdd;
  add.u = 0;
  add.v = 1;
  s.add(add);
  sim::ChurnEvent fresh;
  fresh.round = 9;
  fresh.kind = sim::ChurnKind::kLinkAdd;
  fresh.u = 2;
  fresh.v = 3;
  s.add(fresh);

  const sim::FaultPlan plan = s.to_fault_plan();
  // {0,1} existed, is down exactly during [3, 7).
  EXPECT_TRUE(plan.link_up(0, 1, 2));
  EXPECT_FALSE(plan.link_up(0, 1, 3));
  EXPECT_FALSE(plan.link_up(0, 1, 6));
  EXPECT_TRUE(plan.link_up(0, 1, 7));
  // {2,3} first appears at 9: down on [0, 9).
  EXPECT_FALSE(plan.link_up(2, 3, 0));
  EXPECT_FALSE(plan.link_up(2, 3, 8));
  EXPECT_TRUE(plan.link_up(2, 3, 9));

  // A trailing remove is down forever.
  sim::ChurnEvent rm2;
  rm2.round = 12;
  rm2.kind = sim::ChurnKind::kLinkRemove;
  rm2.u = 2;
  rm2.v = 3;
  s.add(rm2);
  const sim::FaultPlan plan2 = s.to_fault_plan();
  EXPECT_TRUE(plan2.link_up(2, 3, 9));
  EXPECT_FALSE(plan2.link_up(2, 3, 12));
  EXPECT_FALSE(plan2.link_up(2, 3, 1 << 20));

  // Joins sleep until their round; leaves crash.
  sim::ChurnEvent join;
  join.round = 15;
  join.kind = sim::ChurnKind::kNodeJoin;
  join.node = 4;
  join.links = {0};
  s.add(join);
  sim::ChurnEvent leave;
  leave.round = 20;
  leave.kind = sim::ChurnKind::kNodeLeave;
  leave.node = 1;
  s.add(leave);
  const sim::FaultPlan plan3 = s.to_fault_plan();
  EXPECT_TRUE(plan3.is_asleep(4, 0));
  EXPECT_TRUE(plan3.is_asleep(4, 14));
  EXPECT_FALSE(plan3.is_asleep(4, 15));
  // The join's link is absent before round 15 as well.
  EXPECT_FALSE(plan3.link_up(0, 4, 14));
  EXPECT_TRUE(plan3.link_up(0, 4, 15));
  EXPECT_FALSE(plan3.is_crashed(1, 19));
  EXPECT_TRUE(plan3.is_crashed(1, 20));
  EXPECT_EQ(plan3.crash_round(1), 20);

  // Digest is content-determined.
  EXPECT_EQ(plan3.digest(), s.to_fault_plan().digest());
  EXPECT_NE(plan3.digest(), plan2.digest());
}

TEST(ChurnScript, UnionGraphHoldsEveryNodeAndLinkEverAlive) {
  net::Graph base(3);
  base.add_edge(0, 1);
  base.add_edge(1, 2);
  base.finalize();

  sim::ChurnScript s;
  sim::ChurnEvent join;
  join.round = 2;
  join.kind = sim::ChurnKind::kNodeJoin;
  join.node = 3;
  join.links = {0, 2};
  s.add(join);
  sim::ChurnEvent rm;
  rm.round = 4;
  rm.kind = sim::ChurnKind::kLinkRemove;
  rm.u = 0;
  rm.v = 1;
  s.add(rm);
  sim::ChurnEvent leave;
  leave.round = 5;
  leave.kind = sim::ChurnKind::kNodeLeave;
  leave.node = 2;
  s.add(leave);

  const net::Graph u = s.union_graph(base);
  EXPECT_EQ(u.n(), 4);
  // Removed links and departed nodes stay in the carrier — the fault
  // plan, not graph surgery, models their absence.
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(1, 2));
  EXPECT_TRUE(u.has_edge(3, 0));
  EXPECT_TRUE(u.has_edge(3, 2));

  sim::ChurnScript gap;
  sim::ChurnEvent skip = join;
  skip.node = 7;
  gap.add(skip);
  EXPECT_THROW((void)gap.union_graph(base), std::invalid_argument);
}

// One message wave on the union graph: a node that joins at round 30
// must not relay before it joins, and a node that leaves at round 0
// must never relay. The wave starts at node 0 and is re-broadcast once
// per node per round, so it is still propagating when the join fires.
class EchoProtocol final : public sim::Protocol {
 public:
  explicit EchoProtocol(int n) : heard_round_(static_cast<std::size_t>(n), -1) {}
  void on_start(sim::NodeContext& ctx) override {
    if (ctx.node() == 0) {
      heard_round_[0] = 0;
      ctx.broadcast({1, 0, 1, 0, -1});
    }
  }
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override {
    auto& h = heard_round_[static_cast<std::size_t>(ctx.node())];
    if (h != -1) return;
    h = ctx.round();
    ctx.broadcast({1, m.origin, m.hops + 1, 0, -1});
  }
  std::vector<int> heard_round_;
};

TEST(ChurnScript, EngineRunsChurnCompiledFaults) {
  const auto scn = small_scenario(120, 3);
  sim::ChurnScript s;
  sim::ChurnEvent leave;
  leave.round = 0;
  leave.kind = sim::ChurnKind::kNodeLeave;
  leave.node = 1;
  s.add(leave);
  sim::ChurnEvent join;
  join.round = 30;
  join.kind = sim::ChurnKind::kNodeJoin;
  join.node = scn.graph.n();
  join.pos = scn.graph.position(0);
  join.links = {0, 2};
  s.add(join);

  const net::Graph carrier = s.union_graph(scn.graph);
  sim::Engine engine(carrier);
  engine.set_faults(s.to_fault_plan());
  EchoProtocol proto(carrier.n());
  const sim::RunStats stats = engine.run(proto, 200);
  EXPECT_FALSE(stats.hit_round_cap);
  // The crashed node never heard; the joiner cannot have heard before
  // its join round (its links were down and its radio asleep).
  EXPECT_EQ(proto.heard_round_[1], -1);
  const int jr = proto.heard_round_[static_cast<std::size_t>(carrier.n() - 1)];
  if (jr != -1) {
    EXPECT_GE(jr, 30);
  }
}

// The churn-determinism contract behind the CI gate (and the TSan soak):
// the same ChurnScript compiled to a FaultPlan must produce bit-identical
// distributed stage results at 1 engine thread and at 4.
TEST(ChurnSoak, EngineThreadsBitIdentical) {
  const auto scn = small_scenario(250, 33);
  const sim::ChurnScript script =
      sim::ChurnScript::random(scn.graph, soak_spec(scn.range, 40), 2024);
  ASSERT_FALSE(script.empty());
  const net::Graph carrier = script.union_graph(scn.graph);
  const sim::FaultPlan plan = script.to_fault_plan();

  const auto run_with = [&](int threads) {
    sim::Engine engine(carrier);
    engine.set_faults(plan);
    engine.set_threads(threads);
    return core::run_distributed_stages(carrier, core::Params{}, engine);
  };
  const core::DistributedRun seq = run_with(1);
  const core::DistributedRun par = run_with(4);

  EXPECT_EQ(seq.index.khop_size, par.index.khop_size);
  EXPECT_EQ(seq.index.centrality, par.index.centrality);
  EXPECT_EQ(seq.index.index, par.index.index);
  EXPECT_EQ(seq.critical_nodes, par.critical_nodes);
  EXPECT_EQ(seq.voronoi.sites, par.voronoi.sites);
  EXPECT_EQ(seq.voronoi.site_of, par.voronoi.site_of);
  EXPECT_EQ(seq.voronoi.dist, par.voronoi.dist);
  EXPECT_EQ(seq.voronoi.parent, par.voronoi.parent);
  EXPECT_EQ(seq.voronoi.site2_of, par.voronoi.site2_of);
  EXPECT_EQ(seq.voronoi.dist2, par.voronoi.dist2);
  EXPECT_EQ(seq.voronoi.via2, par.voronoi.via2);
  EXPECT_EQ(seq.voronoi.nearby, par.voronoi.nearby);
  // Message totals are part of the determinism contract too.
  EXPECT_EQ(seq.total().transmissions, par.total().transmissions);
  EXPECT_EQ(seq.total().receptions, par.total().receptions);
}

}  // namespace
}  // namespace skelex
