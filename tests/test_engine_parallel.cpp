// Serial-vs-parallel bit-identity of the simulation engine
// (Engine::set_threads): RunStats, protocol end-state, and the
// per-round RoundSeries must be byte-for-byte equal at 1, 2, and 8
// threads — on clean runs, under reception loss, under a FaultPlan
// (crashes, duty-cycle sleep, link churn), and with every stage wrapped
// in a ReliableFloodWrapper. The scenarios cover both UDG and QUDG
// radio models so delivery order is exercised on graphs with and
// without the probabilistic uncertainty band.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/protocols.h"
#include "core/reliable.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/graph.h"
#include "radio/radio_model.h"
#include "sim/engine.h"
#include "sim/faults.h"

namespace skelex {
namespace {

bool same_sample(const obs::RoundSample& a, const obs::RoundSample& b) {
  return a.round == b.round && a.transmissions == b.transmissions &&
         a.receptions == b.receptions && a.queue_depth == b.queue_depth &&
         a.fault_drops == b.fault_drops &&
         a.retransmissions == b.retransmissions;
}

void expect_same_series(const obs::RoundSeries& a, const obs::RoundSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(same_sample(a.samples()[i], b.samples()[i]))
        << "series row " << i << " differs";
  }
}

void expect_same_stats(const sim::RunStats& a, const sim::RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.receptions, b.receptions);
  EXPECT_EQ(a.faults_tx_suppressed, b.faults_tx_suppressed);
  EXPECT_EQ(a.faults_rx_crashed, b.faults_rx_crashed);
  EXPECT_EQ(a.faults_rx_sleeping, b.faults_rx_sleeping);
  EXPECT_EQ(a.faults_rx_linkdown, b.faults_rx_linkdown);
  EXPECT_EQ(a.hit_round_cap, b.hit_round_cap);
  expect_same_series(a.series, b.series);
}

void expect_same_voronoi(const core::VoronoiResult& a,
                         const core::VoronoiResult& b) {
  EXPECT_EQ(a.sites, b.sites);
  EXPECT_EQ(a.site_of, b.site_of);
  EXPECT_EQ(a.dist, b.dist);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.site2_of, b.site2_of);
  EXPECT_EQ(a.dist2, b.dist2);
  EXPECT_EQ(a.via2, b.via2);
  EXPECT_EQ(a.is_segment, b.is_segment);
  EXPECT_EQ(a.is_voronoi_node, b.is_voronoi_node);
}

void expect_same_run(const core::DistributedRun& a,
                     const core::DistributedRun& b) {
  EXPECT_EQ(a.index.khop_size, b.index.khop_size);
  EXPECT_EQ(a.index.centrality, b.index.centrality);
  EXPECT_EQ(a.index.index, b.index.index);
  EXPECT_EQ(a.critical_nodes, b.critical_nodes);
  expect_same_voronoi(a.voronoi, b.voronoi);
  expect_same_stats(a.khop_stats, b.khop_stats);
  expect_same_stats(a.centrality_stats, b.centrality_stats);
  expect_same_stats(a.localmax_stats, b.localmax_stats);
  expect_same_stats(a.voronoi_stats, b.voronoi_stats);
}

net::Graph udg_graph(int nodes, std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 8.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::window(), spec).graph;
}

net::Graph qudg_graph(int nodes, std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 9.0;
  spec.seed = seed;
  const geom::Region region = geom::shapes::window();
  deploy::Rng rng(seed);
  const std::vector<geom::Vec2> pos =
      deploy::scenario_positions(region, spec, rng);
  const double range = deploy::calibrate_range(pos, spec.target_avg_deg);
  const radio::QuasiUnitDiskModel model(range, 0.4, 0.3);
  return deploy::make_scenario(region, spec, model).graph;
}

// A representative FaultPlan: one early crash, one mid-run crash, a
// duty-cycle sleep window, and a churning link near the flood origin.
sim::FaultPlan make_plan(const net::Graph& g) {
  sim::FaultPlan plan;
  const int n = g.n();
  plan.crash_at(n / 3, 0);
  plan.crash_at(n / 2, 4);
  plan.sleep(n / 4, 2, 9);
  plan.sleep(2 * n / 3, 1, 5);
  if (!g.neighbors(0).empty()) {
    plan.link_churn(0, g.neighbors(0)[0], /*down=*/2, /*up=*/2, /*phase=*/1);
  }
  plan.link_down(1, g.neighbors(1).empty() ? 2 : g.neighbors(1)[0], 0, 20);
  return plan;
}

enum class Mode { kClean, kLoss, kFaults, kLossAndFaults };

// One full four-stage distributed run at the given engine thread count.
core::DistributedRun run_stages(const net::Graph& g, int threads, Mode mode) {
  const core::Params params;
  sim::Engine engine(g);
  engine.set_threads(threads);
  engine.enable_round_series(true);
  if (mode == Mode::kLoss || mode == Mode::kLossAndFaults) {
    engine.set_loss(0.3, /*seed=*/11);
  }
  if (mode == Mode::kFaults || mode == Mode::kLossAndFaults) {
    engine.set_faults(make_plan(g));
  }
  return core::run_distributed_stages(g, params, engine);
}

void expect_bit_identity(const net::Graph& g, Mode mode) {
  const core::DistributedRun serial = run_stages(g, 1, mode);
  for (const int threads : {2, 8}) {
    const core::DistributedRun parallel = run_stages(g, threads, mode);
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_same_run(serial, parallel);
  }
}

TEST(EngineParallel, CleanRunUdg) {
  expect_bit_identity(udg_graph(600, 21), Mode::kClean);
}

TEST(EngineParallel, CleanRunQudg) {
  expect_bit_identity(qudg_graph(500, 22), Mode::kClean);
}

TEST(EngineParallel, LossyRunUdg) {
  expect_bit_identity(udg_graph(500, 23), Mode::kLoss);
}

TEST(EngineParallel, FaultPlanUdg) {
  expect_bit_identity(udg_graph(500, 24), Mode::kFaults);
}

TEST(EngineParallel, LossAndFaultsQudg) {
  expect_bit_identity(qudg_graph(400, 25), Mode::kLossAndFaults);
}

TEST(EngineParallel, JitterRunUdg) {
  const net::Graph g = udg_graph(400, 26);
  const core::Params params;
  const auto run_with = [&](int threads) {
    sim::Engine engine(g);
    engine.set_threads(threads);
    engine.enable_round_series(true);
    engine.set_jitter(3, /*seed=*/5);
    return core::run_distributed_stages(g, params, engine);
  };
  const core::DistributedRun serial = run_with(1);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    expect_same_run(serial, run_with(threads));
  }
}

// The reliable flooding synchronizer layers retransmission timers, ACK
// bookkeeping, and note_retransmission() telemetry on top of the plain
// floods — all of it must stay bit-identical under parallel delivery.
TEST(EngineParallel, ReliableWrapperUnderLoss) {
  const net::Graph g = udg_graph(400, 27);
  const core::Params params;
  const auto run_with = [&](int threads) {
    sim::Engine engine(g);
    engine.set_threads(threads);
    engine.enable_round_series(true);
    engine.set_loss(0.25, /*seed=*/13);
    return core::run_distributed_stages_reliable(g, params, engine);
  };
  const core::ReliableRun serial = run_with(1);
  for (const int threads : {2, 8}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    const core::ReliableRun parallel = run_with(threads);
    expect_same_run(serial.run, parallel.run);
    const auto rel_eq = [](const core::ReliableStats& a,
                           const core::ReliableStats& b) {
      EXPECT_EQ(a.data_sent, b.data_sent);
      EXPECT_EQ(a.frames_sent, b.frames_sent);
      EXPECT_EQ(a.acks_sent, b.acks_sent);
      EXPECT_EQ(a.pings_sent, b.pings_sent);
      EXPECT_EQ(a.retransmissions, b.retransmissions);
      EXPECT_EQ(a.duplicates, b.duplicates);
      EXPECT_EQ(a.implicit_acks, b.implicit_acks);
      EXPECT_EQ(a.gave_up_links, b.gave_up_links);
      EXPECT_EQ(a.overflow_data, b.overflow_data);
      EXPECT_EQ(a.stalled_nodes, b.stalled_nodes);
    };
    rel_eq(serial.khop_rel, parallel.khop_rel);
    rel_eq(serial.centrality_rel, parallel.centrality_rel);
    rel_eq(serial.localmax_rel, parallel.localmax_rel);
    rel_eq(serial.voronoi_rel, parallel.voronoi_rel);
  }
}

// A protocol that breaks handler isolation on purpose: every handler
// appends to one shared log. Declaring parallel_safe() == false forces
// the engine onto the serial path even at set_threads(8), so the log —
// which WOULD be racy and order-scrambled under real parallelism — is
// identical to the 1-thread run.
class SharedLogProtocol final : public sim::Protocol {
 public:
  bool parallel_safe() const override { return false; }
  void on_start(sim::NodeContext& ctx) override {
    if (ctx.node() == 0) ctx.broadcast({1, 0, 1, 0, -1});
  }
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override {
    log.push_back(ctx.node());
    if (m.hops < 6) ctx.broadcast({1, m.origin, m.hops + 1, 0, -1});
  }
  std::vector<int> log;  // deliberately shared across nodes
};

TEST(EngineParallel, ParallelUnsafeProtocolForcesSerialPath) {
  const net::Graph g = udg_graph(300, 28);
  const auto run_with = [&](int threads) {
    SharedLogProtocol p;
    sim::Engine engine(g);
    engine.set_threads(threads);
    engine.run(p);
    return p.log;
  };
  const std::vector<int> serial = run_with(1);
  const std::vector<int> wide = run_with(8);
  EXPECT_EQ(serial, wide);
  EXPECT_FALSE(serial.empty());
}

// set_threads(0) resolves to the SKELEX_ENGINE_THREADS default;
// whatever it is, results match an explicit 1-thread engine.
TEST(EngineParallel, DefaultThreadsMatchesSerial) {
  const net::Graph g = udg_graph(300, 29);
  const core::Params params;
  sim::Engine serial_engine(g);
  serial_engine.set_threads(1);
  const core::DistributedRun serial =
      core::run_distributed_stages(g, params, serial_engine);
  sim::Engine default_engine(g);
  default_engine.set_threads(0);
  EXPECT_EQ(default_engine.threads(), sim::default_engine_threads());
  const core::DistributedRun dflt =
      core::run_distributed_stages(g, params, default_engine);
  expect_same_run(serial, dflt);
}

TEST(EngineParallel, SetThreadsValidates) {
  const net::Graph g = udg_graph(50, 30);
  sim::Engine e(g);
  EXPECT_THROW(e.set_threads(-1), std::invalid_argument);
  e.set_threads(8);
  EXPECT_EQ(e.threads(), 8);
}

}  // namespace
}  // namespace skelex
