// exec::ThreadPool determinism contract (see exec/thread_pool.h):
// parallel_for covers [0, n) exactly once, index-slot results are
// identical at 1 and N threads, exceptions propagate, and derive_seed
// is a pure splitmix64 step so per-cell RNG streams are independent of
// scheduling.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"

namespace {

using namespace skelex;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    exec::ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
    for (int n : {0, 1, 3, 7, 100, 1000}) {
      std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
      pool.parallel_for(n, [&](int i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      });
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
            << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, IndexSlotResultsIdenticalAcrossThreadCounts) {
  const int n = 500;
  auto run = [n](int threads) {
    exec::ThreadPool pool(threads);
    std::vector<std::uint64_t> out(static_cast<std::size_t>(n));
    pool.parallel_for(n, [&](int i) {
      // Some per-index work whose value depends only on i (the sweep
      // discipline: seed from the index, write to slot i).
      std::uint64_t x = exec::derive_seed(0xabcdef, static_cast<std::uint64_t>(i));
      for (int r = 0; r < 10; ++r) x = x * 6364136223846793005ull + 1442695040888963407ull;
      out[static_cast<std::size_t>(i)] = x;
    });
    return out;
  };
  const std::vector<std::uint64_t> at1 = run(1);
  EXPECT_EQ(run(2), at1);
  EXPECT_EQ(run(4), at1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  exec::ThreadPool pool(3);
  long long total = 0;
  for (int round = 0; round < 20; ++round) {
    std::vector<int> vals(64);
    pool.parallel_for(64, [&](int i) { vals[static_cast<std::size_t>(i)] = i; });
    total += std::accumulate(vals.begin(), vals.end(), 0LL);
  }
  EXPECT_EQ(total, 20LL * (63 * 64 / 2));
}

TEST(ThreadPool, ParallelChunksCoverAwkwardSizesPast64k) {
  // Work sizes past 2^16 with chunk counts that do not divide n: the
  // chunk boundaries must depend only on (n, chunks) — the property the
  // parallel spatial-hash build and counter-grid deployment use to make
  // chunk-major merges thread-count-invariant — and must concatenate to
  // exactly [0, n) with no gap or overlap at any pool size.
  for (int threads : {1, 2, 8}) {
    exec::ThreadPool pool(threads);
    for (int n : {65537, 70013}) {
      for (int chunks : {1, 2, 3, 7, 8}) {
        std::mutex mu;
        std::vector<std::pair<int, int>> ranges(
            static_cast<std::size_t>(chunks), {-1, -1});
        pool.parallel_chunks(n, chunks, [&](int c, int b, int e) {
          std::lock_guard<std::mutex> lock(mu);
          ranges[static_cast<std::size_t>(c)] = {b, e};
        });
        int expect_begin = 0;
        for (int c = 0; c < chunks; ++c) {
          const auto [b, e] = ranges[static_cast<std::size_t>(c)];
          EXPECT_EQ(b, expect_begin)
              << "threads=" << threads << " n=" << n << " chunk " << c;
          // The documented formula, computed in 64-bit to rule out
          // intermediate overflow at large n * chunks.
          EXPECT_EQ(b, static_cast<int>(static_cast<long long>(c) * n / chunks));
          EXPECT_EQ(e, static_cast<int>(
                           static_cast<long long>(c + 1) * n / chunks));
          expect_begin = e;
        }
        EXPECT_EQ(expect_begin, n) << "threads=" << threads << " n=" << n
                                   << " chunks=" << chunks;
      }
    }
  }
}

TEST(ThreadPool, FirstExceptionInChunkOrderPropagates) {
  for (int threads : {1, 4}) {
    exec::ThreadPool pool(threads);
    try {
      pool.parallel_for(100, [](int i) {
        if (i == 7) throw std::runtime_error("cell 7");
        if (i == 93) throw std::runtime_error("cell 93");
      });
      FAIL() << "expected parallel_for to rethrow (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      // i == 7 lives in an earlier chunk than i == 93 for every chunk
      // partition parallel_for uses, so it is the one rethrown.
      EXPECT_STREQ(e.what(), "cell 7") << "threads=" << threads;
    }
    // The pool must survive a throwing batch.
    std::atomic<int> ran{0};
    pool.parallel_for(10, [&](int) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ThreadPool, ConcurrentParallelForCallsDoNotInterfere) {
  // Two threads drive independent parallel_for calls on the SAME pool.
  // Per-invocation completion groups mean each call returns exactly when
  // its own items are done, never blocking on (or double-counting) the
  // other call's chunks.
  exec::ThreadPool pool(4);
  constexpr int kN = 20000;
  constexpr int kRounds = 25;
  std::atomic<long long> sum_a{0};
  std::atomic<long long> sum_b{0};
  auto drive = [&pool](std::atomic<long long>& sum) {
    for (int round = 0; round < kRounds; ++round) {
      pool.parallel_for(kN, [&sum](int i) {
        sum.fetch_add(i + 1, std::memory_order_relaxed);
      });
    }
  };
  std::thread ta(drive, std::ref(sum_a));
  std::thread tb(drive, std::ref(sum_b));
  ta.join();
  tb.join();
  const long long expect =
      static_cast<long long>(kRounds) * kN * (kN + 1) / 2;
  EXPECT_EQ(sum_a.load(), expect);
  EXPECT_EQ(sum_b.load(), expect);
}

TEST(ThreadPool, SubmitRunsFireAndForgetTasks) {
  exec::ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kTasks) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done == kTasks; }));
  EXPECT_EQ(done, kTasks);
}

TEST(ThreadPool, SubmitOnSingleThreadPoolRunsInline) {
  exec::ThreadPool pool(1);
  int ran = 0;
  pool.submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);  // completed before submit returned
}

TEST(ThreadPool, SubmitAndParallelForCompose) {
  // A daemon-style mix: fire-and-forget jobs that themselves run
  // parallel_for on the same pool (the service's request shape).
  exec::ThreadPool pool(4);
  constexpr int kJobs = 16;
  constexpr int kItems = 512;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::vector<long long> sums(kJobs, 0);
  for (int j = 0; j < kJobs; ++j) {
    pool.submit([&, j] {
      std::atomic<long long> sum{0};
      pool.parallel_for(kItems, [&sum](int i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
      std::lock_guard<std::mutex> lock(mu);
      sums[static_cast<std::size_t>(j)] = sum.load();
      if (++done == kJobs) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                          [&] { return done == kJobs; }));
  const long long expect = static_cast<long long>(kItems) * (kItems - 1) / 2;
  for (long long s : sums) EXPECT_EQ(s, expect);
}

TEST(ThreadPool, IdleWorkersBurnNoCpu) {
  // Daemon requirement: a warm pool waiting for requests must BLOCK, not
  // spin. Measure process CPU time across an idle window and require it
  // to be a small fraction of the wall time a spinning pool would burn
  // (8 spinning workers over 300 ms would cost ~2.4 s of CPU).
  exec::ThreadPool pool(8);
  // Warm the workers up so they are parked in their wait loop.
  pool.parallel_for(64, [](int) {});
  auto cpu_now = [] {
    rusage u{};
    getrusage(RUSAGE_SELF, &u);
    auto tv = [](const timeval& t) {
      return static_cast<double>(t.tv_sec) +
             static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(u.ru_utime) + tv(u.ru_stime);
  };
  const double cpu0 = cpu_now();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const double cpu_idle = cpu_now() - cpu0;
  // Generous bound: other test machinery may tick, but nothing close to
  // even ONE core spinning for the window (0.3 s).
  EXPECT_LT(cpu_idle, 0.15) << "idle pool burned " << cpu_idle << "s CPU";
}

TEST(DeriveSeed, MatchesSplitmix64Reference) {
  // Reference splitmix64 finalizer over base + (index+1)*golden-gamma,
  // written out independently of the implementation.
  auto reference = [](std::uint64_t base, std::uint64_t index) {
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (std::uint64_t base : {0ull, 42ull, 0x5e1ec70bull}) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      EXPECT_EQ(exec::derive_seed(base, i), reference(base, i));
    }
  }
  // Distinct streams for distinct cells.
  EXPECT_NE(exec::derive_seed(42, 0), exec::derive_seed(42, 1));
  EXPECT_NE(exec::derive_seed(42, 0), exec::derive_seed(43, 0));
}

TEST(DefaultThreadCount, HonorsEnvironmentVariable) {
  const char* saved = std::getenv("SKELEX_THREADS");
  const std::string saved_val = saved ? saved : "";

  setenv("SKELEX_THREADS", "3", 1);
  EXPECT_EQ(exec::default_thread_count(), 3);
  setenv("SKELEX_THREADS", "0", 1);  // non-positive -> ignored
  EXPECT_GE(exec::default_thread_count(), 1);
  setenv("SKELEX_THREADS", "junk", 1);  // unparsable -> ignored
  EXPECT_GE(exec::default_thread_count(), 1);
  unsetenv("SKELEX_THREADS");
  EXPECT_GE(exec::default_thread_count(), 1);

  if (saved) {
    setenv("SKELEX_THREADS", saved_val.c_str(), 1);
  } else {
    unsetenv("SKELEX_THREADS");
  }
}

}  // namespace
