// Prometheus exposition rendering (obs/export.h): TYPE headers, sample
// lines, cumulative histogram buckets, label escaping, and the
// canonical-labels round trip that makes structural characters in label
// values safe.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace obs = skelex::obs;

namespace {

TEST(Export, CanonicalLabelsEscapeStructuralChars) {
  const std::string canon = obs::canonical_labels(
      {{"cmd", "a,b"}, {"tier", "x=y"}, {"path", "c\\d"}});
  // Sorted by key, with , = \ escaped inside values.
  EXPECT_EQ(canon, "cmd=a\\,b,path=c\\\\d,tier=x\\=y");
  const obs::Labels back = obs::parse_canonical_labels(canon);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], (std::pair<std::string, std::string>("cmd", "a,b")));
  EXPECT_EQ(back[1], (std::pair<std::string, std::string>("path", "c\\d")));
  EXPECT_EQ(back[2], (std::pair<std::string, std::string>("tier", "x=y")));
}

TEST(Export, PlainLabelsRoundTrip) {
  const obs::Labels labels{{"cmd", "extract"}, {"tier", "cold"}};
  const obs::Labels back =
      obs::parse_canonical_labels(obs::canonical_labels(labels));
  EXPECT_EQ(back, labels);
}

TEST(Export, PrometheusEscape) {
  EXPECT_EQ(obs::prometheus_escape("plain"), "plain");
  EXPECT_EQ(obs::prometheus_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prometheus_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheus_escape("a\nb"), "a\\nb");
}

TEST(Export, RendersCounterAndGauge) {
  obs::Registry reg;
  reg.counter("requests_total", {{"cmd", "extract"}}).inc(3);
  reg.counter("requests_total", {{"cmd", "stats"}}).inc();
  reg.gauge("depth_peak").set(7.5);
  reg.gauge("never_set");  // registered but unset: must not render

  const std::string text = obs::render_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("requests_total{cmd=\"extract\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("requests_total{cmd=\"stats\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE depth_peak gauge\ndepth_peak 7.5\n"),
            std::string::npos);
  EXPECT_EQ(text.find("never_set"), std::string::npos);
  // One TYPE header per family, not per label set.
  EXPECT_EQ(text.find("# TYPE requests_total"),
            text.rfind("# TYPE requests_total"));
}

TEST(Export, RendersCumulativeHistogram) {
  obs::Registry reg;
  const obs::Histogram h = reg.histogram("latency_ms", {1, 5, 10});
  h.observe(0.5);   // bucket le=1
  h.observe(3);     // le=5
  h.observe(4);     // le=5
  h.observe(100);   // +Inf

  const std::string text = obs::render_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# TYPE latency_ms histogram\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"1\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_ms_bucket{le=\"5\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_ms_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_ms_count 4\n"), std::string::npos);
}

TEST(Export, HistogramLabelsComposeWithLe) {
  obs::Registry reg;
  reg.histogram("req_ms", {1}, {{"cmd", "extract"}}).observe(0.2);
  const std::string text = obs::render_prometheus(reg.snapshot());
  EXPECT_NE(text.find("req_ms_bucket{cmd=\"extract\",le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("req_ms_count{cmd=\"extract\"} 1\n"), std::string::npos);
}

TEST(Export, StructuralLabelValueSurvivesToExposition) {
  // A label value carrying ',' and '=' must come out of the canonical
  // string intact (the round trip the escaping exists for).
  obs::Registry reg;
  reg.counter("odd_total", {{"expr", "a=b,c"}}).inc();
  const std::string text = obs::render_prometheus(reg.snapshot());
  EXPECT_NE(text.find("odd_total{expr=\"a=b,c\"} 1\n"), std::string::npos)
      << text;
}

}  // namespace
