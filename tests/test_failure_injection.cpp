// Failure injection: §III-D notes that loops can be "caused by obstacles
// (or nodes failure, etc)". Killing all nodes in a disk of a previously
// hole-free network must make the skeleton grow exactly one genuine loop
// around the dead zone — and random scattered failures must NOT create
// spurious loops.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/graph.h"

namespace skelex {
namespace {

// Remove the given nodes from a graph (keeping positions), then take the
// largest component.
net::Graph kill_nodes(const net::Graph& g, const std::vector<char>& dead) {
  std::vector<int> orig;
  return net::largest_component_subgraph(net::remove_nodes(g, dead), orig);
}

net::Graph base_network(std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2400;
  spec.target_avg_deg = 8.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::rect(100, 70), spec).graph;
}

TEST(FailureInjection, DeadZoneCreatesExactlyOneLoop) {
  const net::Graph g = base_network(41);
  // Baseline: hole-free rectangle -> no loops.
  const core::SkeletonResult before = core::extract_skeleton(g, core::Params{});
  ASSERT_EQ(before.skeleton_cycle_rank(), 0);

  // Kill a disk of radius 14 in the middle.
  std::vector<char> dead(static_cast<std::size_t>(g.n()), 0);
  int killed = 0;
  for (int v = 0; v < g.n(); ++v) {
    if (geom::dist(g.position(v), {50, 35}) < 14.0) {
      dead[static_cast<std::size_t>(v)] = 1;
      ++killed;
    }
  }
  ASSERT_GT(killed, 50);
  const net::Graph broken = kill_nodes(g, dead);
  const core::SkeletonResult after =
      core::extract_skeleton(broken, core::Params{});
  EXPECT_EQ(after.skeleton.component_count(), 1);
  EXPECT_EQ(after.skeleton_cycle_rank(), 1)
      << "the dead zone must read as one hole";
  // The loop actually encircles the dead zone: some skeleton node on
  // every side of it.
  bool left = false, right = false, above = false, below = false;
  for (int v : after.skeleton.nodes()) {
    const geom::Vec2 p = broken.position(v);
    if (std::abs(p.y - 35) < 12) {
      left |= p.x < 50 - 14;
      right |= p.x > 50 + 14;
    }
    if (std::abs(p.x - 50) < 12) {
      below |= p.y < 35 - 14;
      above |= p.y > 35 + 14;
    }
  }
  EXPECT_TRUE(left && right && above && below);
}

TEST(FailureInjection, ScatteredFailuresKeepTopology) {
  const net::Graph g = base_network(42);
  deploy::Rng rng(99);
  std::vector<char> dead(static_cast<std::size_t>(g.n()), 0);
  // 8% random failures.
  for (int v = 0; v < g.n(); ++v) {
    if (rng.next_double() < 0.08) dead[static_cast<std::size_t>(v)] = 1;
  }
  const net::Graph broken = kill_nodes(g, dead);
  ASSERT_GT(broken.n(), g.n() * 4 / 5);
  const core::SkeletonResult r = core::extract_skeleton(broken, core::Params{});
  EXPECT_EQ(r.skeleton.component_count(), 1);
  EXPECT_EQ(r.skeleton_cycle_rank(), 0)
      << "scattered failures are not holes";
}

TEST(FailureInjection, TwoDeadZonesTwoLoops) {
  const net::Graph g = base_network(43);
  std::vector<char> dead(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    const geom::Vec2 p = g.position(v);
    if (geom::dist(p, {28, 35}) < 11.0 || geom::dist(p, {72, 35}) < 11.0) {
      dead[static_cast<std::size_t>(v)] = 1;
    }
  }
  const net::Graph broken = kill_nodes(g, dead);
  const core::SkeletonResult r = core::extract_skeleton(broken, core::Params{});
  EXPECT_EQ(r.skeleton.component_count(), 1);
  EXPECT_EQ(r.skeleton_cycle_rank(), 2);
}

}  // namespace
}  // namespace skelex
