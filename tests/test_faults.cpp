// Fault injection: FaultPlan semantics, the engine's enforcement of
// crash-stop / duty-cycle / link churn, and the end-to-end acceptance
// scenario — crashing a disk of nodes MID-RUN through the simulator
// (not graph surgery) and re-extracting on the survivor graph must grow
// exactly one genuine skeleton loop around the dead zone.
#include "sim/faults.h"

#include <gtest/gtest.h>

#include <climits>
#include <stdexcept>
#include <vector>

#include "core/pipeline.h"
#include "core/protocols.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/graph.h"
#include "sim/dynamics.h"
#include "sim/engine.h"

namespace skelex {
namespace {

net::Graph path_graph(int n) {
  net::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

// Node 0 emits one message; every receiver forwards once.
class WaveProtocol final : public sim::Protocol {
 public:
  explicit WaveProtocol(int n) : heard_(static_cast<std::size_t>(n), 0) {}
  void on_start(sim::NodeContext& ctx) override {
    if (ctx.node() == 0) {
      heard_[0] = 1;
      ctx.broadcast({1, 0, 1, 0, -1});
    }
  }
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override {
    auto& h = heard_[static_cast<std::size_t>(ctx.node())];
    if (h) return;
    h = 1;
    ctx.broadcast({1, m.origin, m.hops + 1, 0, -1});
  }
  std::vector<char> heard_;
};

TEST(FaultPlan, ValidatesArguments) {
  sim::FaultPlan p;
  EXPECT_THROW(p.crash_at(-1, 0), std::invalid_argument);
  EXPECT_THROW(p.crash_at(0, -1), std::invalid_argument);
  EXPECT_THROW(p.sleep(0, 5, 5), std::invalid_argument);
  EXPECT_THROW(p.sleep(0, 5, 4), std::invalid_argument);
  EXPECT_THROW(p.link_down(2, 2, 0, 5), std::invalid_argument);
  EXPECT_THROW(p.link_churn(0, 1, 0, 1), std::invalid_argument);
  EXPECT_TRUE(p.empty());
}

TEST(FaultPlan, CrashEarliestRoundWins) {
  sim::FaultPlan p;
  p.crash_at(3, 10);
  p.crash_at(3, 4);
  p.crash_at(3, 7);
  EXPECT_EQ(p.crash_round(3), 4);
  EXPECT_FALSE(p.is_crashed(3, 3));
  EXPECT_TRUE(p.is_crashed(3, 4));
  EXPECT_TRUE(p.is_crashed(3, 1000));
  EXPECT_EQ(p.crash_round(2), INT_MAX);
  const std::vector<char> by3 = p.crashed_by(5, 3);
  const std::vector<char> by4 = p.crashed_by(5, 4);
  EXPECT_EQ(by3, (std::vector<char>{0, 0, 0, 0, 0}));
  EXPECT_EQ(by4, (std::vector<char>{0, 0, 0, 1, 0}));
}

TEST(FaultPlan, SleepWindowsAndLinkIntervals) {
  sim::FaultPlan p;
  p.sleep(1, 2, 5);
  p.sleep(1, 8, 9);
  EXPECT_FALSE(p.is_asleep(1, 1));
  EXPECT_TRUE(p.is_asleep(1, 2));
  EXPECT_TRUE(p.is_asleep(1, 4));
  EXPECT_FALSE(p.is_asleep(1, 5));
  EXPECT_TRUE(p.is_asleep(1, 8));
  EXPECT_FALSE(p.is_asleep(2, 3));

  p.link_down(4, 7, 1, 3);
  EXPECT_TRUE(p.link_up(4, 7, 0));
  EXPECT_FALSE(p.link_up(4, 7, 1));
  EXPECT_FALSE(p.link_up(7, 4, 2));  // symmetric
  EXPECT_TRUE(p.link_up(4, 7, 3));
  EXPECT_TRUE(p.link_up(4, 6, 2));  // other links unaffected
}

TEST(FaultPlan, LinkChurnPeriodicPattern) {
  sim::FaultPlan p;
  p.link_churn(0, 1, /*down=*/2, /*up=*/3, /*phase=*/1);
  EXPECT_TRUE(p.link_up(0, 1, 0));  // before phase: up
  // From round 1: DDUUU DDUUU ...
  EXPECT_FALSE(p.link_up(0, 1, 1));
  EXPECT_FALSE(p.link_up(0, 1, 2));
  EXPECT_TRUE(p.link_up(0, 1, 3));
  EXPECT_TRUE(p.link_up(0, 1, 5));
  EXPECT_FALSE(p.link_up(0, 1, 6));
  EXPECT_FALSE(p.link_up(1, 0, 7));
  EXPECT_TRUE(p.link_up(0, 1, 8));

  // up == 0: permanently down from phase.
  sim::FaultPlan q;
  q.link_churn(2, 3, 1, 0, 5);
  EXPECT_TRUE(q.link_up(2, 3, 4));
  EXPECT_FALSE(q.link_up(2, 3, 5));
  EXPECT_FALSE(q.link_up(2, 3, 50000));
}

TEST(EngineFaults, CrashAtRoundZeroNeverStarts) {
  const net::Graph g = path_graph(5);
  sim::Engine e(g);
  sim::FaultPlan plan;
  plan.crash_at(2, 0);
  e.set_faults(plan);
  WaveProtocol p(5);
  const sim::RunStats s = e.run(p);
  // The wave dies at the crashed node: 3 and 4 never hear it.
  EXPECT_EQ(p.heard_, (std::vector<char>{1, 1, 0, 0, 0}));
  // Node 1's forward was heard by node 2's radio but swallowed.
  EXPECT_GT(s.faults_rx_crashed, 0);
  EXPECT_EQ(s.faults_tx_suppressed, 0);  // a crashed node never even tries
}

TEST(EngineFaults, SleepSpanningWholeRunMissesEverything) {
  const net::Graph g = path_graph(5);
  sim::Engine e(g);
  sim::FaultPlan plan;
  plan.sleep(2, 0, 1000);  // radio off for the entire run
  e.set_faults(plan);
  core::KhopSizeProtocol khop(5, 2);
  const sim::RunStats s = e.run(khop);
  const std::vector<int> sizes = khop.sizes();
  // The sleeper learned nothing and told nobody.
  EXPECT_EQ(sizes[2], 0);
  EXPECT_GT(s.faults_tx_suppressed, 0);  // its on_start broadcast
  EXPECT_GT(s.faults_rx_sleeping, 0);    // neighbors' floods at its radio
  // Its silence also cuts the path: 0-1 and 3-4 can't hear across it.
  EXPECT_EQ(sizes[0], 1);
  EXPECT_EQ(sizes[1], 1);
}

TEST(EngineFaults, LinkChurningEveryRound) {
  net::Graph g(2);
  g.add_edge(0, 1);
  // Down on even rounds, up on odd rounds. The wave's only transmission
  // happens at fault-round 0 -> swallowed.
  {
    sim::Engine e(g);
    sim::FaultPlan plan;
    plan.link_churn(0, 1, 1, 1, /*phase=*/0);
    e.set_faults(plan);
    WaveProtocol p(2);
    const sim::RunStats s = e.run(p);
    EXPECT_EQ(p.heard_, (std::vector<char>{1, 0}));
    EXPECT_EQ(s.faults_rx_linkdown, 1);
  }
  // Shift the pattern one round: up at round 0 -> delivered. Node 1's
  // forward back at round 1 hits the next down round and is swallowed.
  {
    sim::Engine e(g);
    sim::FaultPlan plan;
    plan.link_churn(0, 1, 1, 1, /*phase=*/1);
    e.set_faults(plan);
    WaveProtocol p(2);
    const sim::RunStats s = e.run(p);
    EXPECT_EQ(p.heard_, (std::vector<char>{1, 1}));
    EXPECT_EQ(s.faults_rx_linkdown, 1);
  }
}

TEST(EngineFaults, CrashClockSpansMultipleRuns) {
  const net::Graph g = path_graph(3);
  sim::Engine e(g);
  sim::FaultPlan plan;
  plan.crash_at(2, 2);  // dies in round 2 of the engine's LIFETIME
  e.set_faults(plan);

  WaveProtocol a(3);
  e.run(a);  // rounds 1..2 of the lifetime
  EXPECT_EQ(a.heard_, (std::vector<char>{1, 1, 0}));  // delivery at round 2: dead

  // Second run starts at lifetime round 2: node 2 is already gone and
  // does not even run on_start.
  WaveProtocol b(3);
  const sim::RunStats s = e.run(b);
  EXPECT_EQ(b.heard_, (std::vector<char>{1, 1, 0}));
  EXPECT_GT(s.faults_rx_crashed, 0);
}

// --- Acceptance: mid-run disk crash grows exactly one loop -------------------

TEST(EngineFaults, MidRunDiskCrashCreatesExactlyOneLoop) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2400;
  spec.target_avg_deg = 8.0;
  spec.seed = 41;
  const net::Graph g =
      deploy::make_udg_scenario(geom::shapes::rect(100, 70), spec).graph;

  // Baseline: hole-free rectangle -> no loops.
  const core::SkeletonResult before = core::extract_skeleton(g, core::Params{});
  ASSERT_EQ(before.skeleton_cycle_rank(), 0);

  // Every node inside a disk of radius 14 crashes at round 6 — while the
  // k-hop flood is still in the air.
  sim::FaultPlan plan;
  int killed = 0;
  for (int v = 0; v < g.n(); ++v) {
    if (geom::dist(g.position(v), {50, 35}) < 14.0) {
      plan.crash_at(v, 6);
      ++killed;
    }
  }
  ASSERT_GT(killed, 50);

  sim::Engine engine(g);
  engine.set_faults(plan);
  const core::DistributedRun run =
      core::run_distributed_stages(g, core::Params{}, engine);
  // The crashes really happened inside the simulation.
  EXPECT_GT(run.total().total_fault_drops(), 0);
  // Survivors outside the disk still produced their stage-1 data.
  EXPECT_GT(run.completeness.critical_count, 0);

  // A monitoring station learns the crash set from the plan and
  // re-extracts on the survivor graph.
  std::vector<int> orig;
  const net::Graph broken = net::largest_component_subgraph(
      net::remove_nodes(g, plan.crashed_by(g.n(), INT_MAX)), orig);
  const core::SkeletonResult after =
      core::extract_skeleton(broken, core::Params{});
  EXPECT_EQ(after.skeleton.component_count(), 1);
  EXPECT_EQ(after.skeleton_cycle_rank(), 1)
      << "the crashed disk must read as exactly one hole";
  // The loop actually encircles the dead zone.
  bool left = false, right = false, above = false, below = false;
  for (int v : after.skeleton.nodes()) {
    const geom::Vec2 p = broken.position(v);
    if (std::abs(p.y - 35) < 12) {
      left |= p.x < 50 - 14;
      right |= p.x > 50 + 14;
    }
    if (std::abs(p.x - 50) < 12) {
      below |= p.y < 35 - 14;
      above |= p.y > 35 + 14;
    }
  }
  EXPECT_TRUE(left && right && above && below);
}

// Satellite of the self-healing front: crash + sleep + churn in ONE
// fault plan. A ChurnScript compiles onto the same FaultPlan machinery,
// so extra crash/sleep injections stack on top of the churn timeline;
// StageCompleteness must report the resulting stage-1/2 deficits and
// complete_extraction must still produce a skeleton from the partial
// data (graceful degradation, not a crash).
TEST(EngineFaults, StageCompletenessUnderCrashSleepAndChurn) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 400;
  spec.target_avg_deg = 9.0;
  spec.seed = 17;
  const auto scn = deploy::make_udg_scenario(geom::shapes::rect(100, 60), spec);

  sim::ChurnScript::RandomSpec churn;
  churn.rounds = 30;
  churn.join_rate = 0.2;
  churn.leave_rate = 0.2;
  churn.link_add_rate = 0.4;
  churn.link_remove_rate = 0.4;
  churn.range = scn.range;
  const sim::ChurnScript script =
      sim::ChurnScript::random(scn.graph, churn, 91);
  ASSERT_FALSE(script.empty());

  const net::Graph carrier = script.union_graph(scn.graph);
  sim::FaultPlan plan = script.to_fault_plan();
  // Stack classic faults on top of the churn plan: a crashed patch and
  // a band of sleepers that miss the floods entirely.
  int crashed = 0;
  int sleeping = 0;
  for (int v = 0; v < scn.graph.n(); ++v) {
    const geom::Vec2 p = carrier.position(v);
    if (geom::dist(p, {25, 30}) < 10.0 && !plan.is_crashed(v, 0)) {
      plan.crash_at(v, 0);
      ++crashed;
    } else if (p.x > 80 && plan.crash_round(v) == INT_MAX) {
      plan.sleep(v, 0, 1 << 20);
      ++sleeping;
    }
  }
  ASSERT_GT(crashed, 10);
  ASSERT_GT(sleeping, 10);

  sim::Engine engine(carrier);
  engine.set_faults(plan);
  const core::DistributedRun run =
      core::run_distributed_stages(carrier, core::Params{}, engine);

  // The combined faults really bit: drops happened, the silenced nodes
  // produced no stage-1 data, and Voronoi coverage is partial.
  EXPECT_GT(run.total().total_fault_drops(), 0);
  EXPECT_GE(run.completeness.khop_empty, crashed + sleeping);
  // A sleeping node hears no rival index, so it claims local-max and
  // becomes its own singleton site — the critical set bloats rather than
  // the coverage dropping. Crashed nodes stay unassigned for real.
  EXPECT_GE(run.completeness.critical_count, sleeping);
  EXPECT_GE(run.completeness.voronoi_unassigned, crashed);
  EXPECT_LT(run.completeness.voronoi_coverage, 1.0);

  // Graceful degradation: the pipeline completes from the partial
  // stage-1/2 data, and the completeness deficits surface as warnings.
  const core::SkeletonResult r = core::complete_extraction(
      carrier, core::Params{}, run.index, run.critical_nodes, run.voronoi);
  EXPECT_GT(r.skeleton.node_count(), 0);
  core::Diagnostics diag;
  core::apply_completeness_warnings(run.completeness, diag);
  EXPECT_FALSE(diag.ok());
}

}  // namespace
}  // namespace skelex
