#include "core/flow_segmentation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "baseline/boundary.h"
#include "baseline/distance_transform.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

namespace skelex::core {
namespace {

TEST(FlowSegmentation, Validation) {
  net::Graph g(4);
  SkeletonGraph wrong(3);
  std::vector<int> d4(4, 0);
  EXPECT_THROW(flow_segmentation(g, wrong, d4), std::invalid_argument);
  SkeletonGraph sk(4);
  std::vector<int> d3(3, 0);
  EXPECT_THROW(flow_segmentation(g, sk, d3), std::invalid_argument);
}

TEST(FlowSegmentation, PathSkeletonIsOneSegment) {
  // Path graph, skeleton = middle chain: everything flows to one sink.
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  SkeletonGraph sk(7);
  sk.add_edge(2, 3);
  sk.add_edge(3, 4);
  const std::vector<int> bd{0, 1, 2, 3, 2, 1, 0};
  const FlowSegmentation fs = flow_segmentation(g, sk, bd);
  EXPECT_EQ(fs.segment_count, 1);
  for (int v = 0; v < 7; ++v) EXPECT_EQ(fs.segment_of[static_cast<std::size_t>(v)], 0);
  EXPECT_EQ(fs.segment_size, (std::vector<int>{7}));
}

TEST(FlowSegmentation, YSkeletonYieldsThreeLimbs) {
  // Y-shaped skeleton: three chains meeting at junction 0.
  //   chains: 1-2, 3-4, 5-6 hanging off 0.
  net::Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(0, 5);
  g.add_edge(5, 6);
  SkeletonGraph sk(7);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(0, 3);
  sk.add_edge(3, 4);
  sk.add_edge(0, 5);
  sk.add_edge(5, 6);
  const std::vector<int> bd(7, 1);
  const FlowSegmentation fs = flow_segmentation(g, sk, bd);
  EXPECT_EQ(fs.segment_count, 3);
  // The junction joined one of the three chains.
  EXPECT_NE(fs.sink_of[0], -1);
  // Each chain is its own sink.
  EXPECT_NE(fs.sink_of[1], fs.sink_of[3]);
  EXPECT_NE(fs.sink_of[3], fs.sink_of[5]);
}

TEST(FlowSegmentation, CrossNetworkGetsOneSegmentPerArm) {
  // The motivating case: a cross/plus network should segment into the
  // four arms (plus possibly a small center piece).
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1600;
  spec.target_avg_deg = 7.5;
  spec.seed = 9;
  const geom::Region region = geom::shapes::cross();
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const net::Graph& g = sc.graph;
  const SkeletonResult r = extract_skeleton(g, Params{});
  // Boundary distance from the detected boundary nodes.
  baseline::BoundaryInfo binfo;
  binfo.is_boundary.assign(static_cast<std::size_t>(g.n()), 0);
  for (int v : r.boundary.boundary_nodes) {
    binfo.is_boundary[static_cast<std::size_t>(v)] = 1;
    binfo.nodes.push_back({v, -1, 0.0});
  }
  const baseline::DistanceTransform dt =
      baseline::boundary_distance_transform(g, binfo);
  const FlowSegmentation fs = flow_segmentation(g, r.skeleton, dt.dist);

  // Segments with >5% of nodes: expect ~4-6 (arms + maybe center).
  int big = 0;
  for (int s : fs.segment_size) {
    if (s > g.n() / 20) ++big;
  }
  EXPECT_GE(big, 3);
  EXPECT_LE(big, 7);

  // Every node assigned; sizes partition the network.
  int total = 0;
  for (int s : fs.segment_size) total += s;
  EXPECT_EQ(total, g.n());

  // Arm tips land in different segments: the four extremes of the plus.
  const auto seg_at = [&](geom::Vec2 p) {
    int best = 0;
    for (int v = 1; v < g.n(); ++v) {
      if (geom::dist2(g.position(v), p) < geom::dist2(g.position(best), p)) {
        best = v;
      }
    }
    return fs.segment_of[static_cast<std::size_t>(best)];
  };
  std::set<int> tip_segments{seg_at({50, 5}), seg_at({50, 95}),
                             seg_at({5, 50}), seg_at({95, 50})};
  EXPECT_GE(tip_segments.size(), 3u);
}

TEST(FlowSegmentation, SegmentsAreConnected) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1000;
  spec.target_avg_deg = 7.5;
  spec.seed = 10;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::tshape(), spec);
  const net::Graph& g = sc.graph;
  const SkeletonResult r = extract_skeleton(g, Params{});
  const FlowSegmentation fs =
      flow_segmentation(g, r.skeleton, r.boundary.dist_to_skeleton);
  // (Using dist-to-skeleton inverted semantics is fine for this check —
  // we only verify the structural invariant that watershed basins grown
  // by adjacency are connected.)
  for (int s = 0; s < fs.segment_count; ++s) {
    std::vector<int> members;
    for (int v = 0; v < g.n(); ++v) {
      if (fs.segment_of[static_cast<std::size_t>(v)] == s) members.push_back(v);
    }
    if (members.empty()) continue;
    // BFS within the segment.
    std::set<int> in_seg(members.begin(), members.end());
    std::set<int> seen{members.front()};
    std::vector<int> stack{members.front()};
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (int w : g.neighbors(v)) {
        if (in_seg.count(w) && !seen.count(w)) {
          seen.insert(w);
          stack.push_back(w);
        }
      }
    }
    EXPECT_EQ(seen.size(), in_seg.size()) << "segment " << s;
  }
}

}  // namespace
}  // namespace skelex::core
