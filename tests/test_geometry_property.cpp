// Cross-validation of the geometric kernel: the crossing-number
// point-in-polygon test against an independent winding-number
// implementation, over random points and every library shape.
#include <gtest/gtest.h>

#include <cmath>

#include "deploy/rng.h"
#include "geometry/shapes.h"

namespace skelex::geom {
namespace {

// Independent reference: signed winding number by summing subtended
// angles. Slow but a genuinely different algorithm.
bool winding_contains(const Ring& ring, Vec2 p) {
  double angle = 0.0;
  const auto& pts = ring.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Vec2 a = pts[i] - p;
    const Vec2 b = pts[(i + 1) % pts.size()] - p;
    angle += std::atan2(a.cross(b), a.dot(b));
  }
  return std::abs(angle) > 3.0;  // ~2*pi inside, ~0 outside
}

class ContainsCrossValidation
    : public ::testing::TestWithParam<shapes::NamedShape> {};

TEST_P(ContainsCrossValidation, CrossingMatchesWinding) {
  const Region& region = GetParam().region;
  Vec2 lo, hi;
  region.bounding_box(lo, hi);
  deploy::Rng rng(0xfeed);
  int checked = 0;
  for (int i = 0; i < 3000; ++i) {
    const Vec2 p{rng.uniform(lo.x - 2, hi.x + 2),
                 rng.uniform(lo.y - 2, hi.y + 2)};
    // Skip points within epsilon of any boundary: the two algorithms may
    // legitimately disagree on exact-boundary classification.
    if (region.distance_to_boundary(p) < 1e-6) continue;
    bool expected = winding_contains(region.outer(), p);
    for (const Ring& h : region.holes()) {
      if (winding_contains(h, p)) expected = false;
    }
    EXPECT_EQ(region.contains(p), expected)
        << GetParam().name << " at " << p;
    ++checked;
  }
  EXPECT_GT(checked, 2500);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, ContainsCrossValidation,
                         ::testing::ValuesIn(shapes::all_shapes()),
                         [](const auto& info) { return info.param.name; });

TEST(ClosestBoundaryPoint, IsOnTheBoundaryAndRealizesTheDistance) {
  const Region region = shapes::smile();
  deploy::Rng rng(0xbead);
  Vec2 lo, hi;
  region.bounding_box(lo, hi);
  for (int i = 0; i < 400; ++i) {
    const Vec2 p{rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y)};
    const Vec2 c = region.closest_boundary_point(p);
    const double d = region.distance_to_boundary(p);
    EXPECT_NEAR(dist(p, c), d, 1e-9);
    EXPECT_LT(region.distance_to_boundary(c), 1e-9);
  }
}

}  // namespace
}  // namespace skelex::geom
