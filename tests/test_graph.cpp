#include "net/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "deploy/deployment.h"
#include "geometry/shapes.h"

namespace skelex::net {
namespace {

using geom::Vec2;

TEST(Graph, EmptyAndIsolated) {
  Graph g(5);
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.edge_count(), 0);
  EXPECT_EQ(g.degree(0), 0);
  EXPECT_FALSE(g.has_positions());
  EXPECT_DOUBLE_EQ(g.avg_degree(), 0.0);
  EXPECT_THROW(Graph(-1), std::invalid_argument);
}

TEST(Graph, AddEdgeIdempotentAndUndirected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);  // duplicate in reverse
  g.add_edge(0, 1);  // duplicate
  g.add_edge(0, 0);  // self edge ignored
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_THROW(g.add_edge(0, 7), std::out_of_range);
}

TEST(Graph, AvgDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 6.0 / 4.0);
}

TEST(Graph, PositionsCarried) {
  Graph g(std::vector<Vec2>{{0, 0}, {1, 1}});
  EXPECT_TRUE(g.has_positions());
  EXPECT_EQ(g.position(1), Vec2(1, 1));
  EXPECT_EQ(g.n(), 2);
}

TEST(BuildUdg, MatchesPairwiseDistances) {
  std::vector<Vec2> pts{{0, 0}, {1, 0}, {2.5, 0}, {2.5, 0.5}};
  Graph g = build_udg(pts, 1.2);
  EXPECT_TRUE(g.has_edge(0, 1));   // dist 1
  EXPECT_FALSE(g.has_edge(1, 2));  // dist 1.5
  EXPECT_TRUE(g.has_edge(2, 3));   // dist 0.5
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.edge_count(), 2);
}

TEST(BuildGraph, ProbabilisticModelsAreSymmetric) {
  // The link decision is made once per unordered pair, so the graph is
  // undirected by construction; verify adjacency symmetry on a QUDG.
  const geom::Region r = geom::shapes::rect(40, 40);
  deploy::Rng rng(17);
  auto pts = deploy::uniform_in_region(r, 300, rng);
  radio::QuasiUnitDiskModel model(4.0, 0.4, 0.3);
  Graph g = build_graph(std::move(pts), model, rng);
  for (int v = 0; v < g.n(); ++v) {
    for (int w : g.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(w, v));
    }
  }
  EXPECT_GT(g.edge_count(), 0);
}

TEST(ConnectedComponents, LabelsAndSizes) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  // node 5 isolated
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[1], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[0], c.label[5]);
  std::vector<int> sizes = c.size;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(c.size[static_cast<std::size_t>(c.largest)], 3);
}

TEST(LargestComponentSubgraph, KeepsEdgesAndPositions) {
  Graph g(std::vector<Vec2>{{0, 0}, {1, 0}, {2, 0}, {10, 10}, {11, 10}});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(3, 4);
  std::vector<int> orig;
  Graph sub = largest_component_subgraph(g, orig);
  EXPECT_EQ(sub.n(), 3);
  EXPECT_EQ(sub.edge_count(), 3);
  ASSERT_EQ(orig.size(), 3u);
  EXPECT_EQ(orig, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(sub.has_positions());
  EXPECT_EQ(sub.position(2), Vec2(2, 0));
}

TEST(LargestComponentSubgraph, WholeGraphWhenConnected) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<int> orig;
  Graph sub = largest_component_subgraph(g, orig);
  EXPECT_EQ(sub.n(), 3);
  EXPECT_EQ(sub.edge_count(), 2);
  EXPECT_FALSE(sub.has_positions());
}

TEST(RemoveNodes, KeepsSurvivorEdgesPositionsAndOrder) {
  Graph g(std::vector<Vec2>{{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const std::vector<char> dead{0, 1, 0, 0};  // kill node 1
  std::vector<int> orig;
  const Graph sub = remove_nodes(g, dead, &orig);
  EXPECT_EQ(sub.n(), 3);
  EXPECT_EQ(orig, (std::vector<int>{0, 2, 3}));
  // Only the 2-3 edge survives (both 0-1 and 1-2 lost an endpoint).
  EXPECT_EQ(sub.edge_count(), 1);
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_TRUE(sub.has_positions());
  EXPECT_EQ(sub.position(1), Vec2(2, 0));
}

TEST(RemoveNodes, NullMapAndNoPositions) {
  Graph g(3);
  g.add_edge(0, 2);
  const std::vector<char> dead{0, 1, 0};
  const Graph sub = remove_nodes(g, dead);
  EXPECT_EQ(sub.n(), 2);
  EXPECT_EQ(sub.edge_count(), 1);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_FALSE(sub.has_positions());
}

TEST(RemoveNodes, RejectsWrongMaskSize) {
  Graph g(3);
  const std::vector<char> dead{0, 1};
  EXPECT_THROW(remove_nodes(g, dead), std::invalid_argument);
}

TEST(RemoveNodes, EmptyMaskKeepsEverything) {
  Graph g(2);
  g.add_edge(0, 1);
  const std::vector<char> dead{0, 0};
  const Graph sub = remove_nodes(g, dead);
  EXPECT_EQ(sub.n(), 2);
  EXPECT_EQ(sub.edge_count(), 1);
}

}  // namespace
}  // namespace skelex::net
