#include "io/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

namespace skelex::io {
namespace {

TEST(GraphIo, ParseMinimal) {
  std::istringstream in("n 3\ne 0 1\ne 1 2\n");
  const net::Graph g = read_graph(in);
  EXPECT_EQ(g.n(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_positions());
}

TEST(GraphIo, ParseWithPositionsAndComments) {
  std::istringstream in(
      "# a comment\n"
      "n 2\n"
      "p 0 1.5 -2.25  # inline comment\n"
      "p 1 3 4\n"
      "\n"
      "e 0 1\n");
  const net::Graph g = read_graph(in);
  ASSERT_TRUE(g.has_positions());
  EXPECT_DOUBLE_EQ(g.position(0).x, 1.5);
  EXPECT_DOUBLE_EQ(g.position(0).y, -2.25);
  EXPECT_DOUBLE_EQ(g.position(1).y, 4.0);
}

TEST(GraphIo, Errors) {
  {
    std::istringstream in("e 0 1\n");
    EXPECT_THROW(read_graph(in), std::runtime_error);  // missing n
  }
  {
    std::istringstream in("n 2\nn 3\n");
    EXPECT_THROW(read_graph(in), std::runtime_error);  // duplicate n
  }
  {
    std::istringstream in("n 2\ne 0 5\n");
    EXPECT_THROW(read_graph(in), std::runtime_error);  // id out of range
  }
  {
    std::istringstream in("n 2\nq 1 2\n");
    EXPECT_THROW(read_graph(in), std::runtime_error);  // unknown directive
  }
  {
    std::istringstream in("n 2\ne 0\n");
    EXPECT_THROW(read_graph(in), std::runtime_error);  // truncated edge
  }
  EXPECT_THROW(read_graph_file("/no/such/file"), std::runtime_error);
}

TEST(GraphIo, RoundTripPreservesGraph) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 300;
  spec.target_avg_deg = 7.0;
  spec.seed = 12;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::disk(), spec);
  std::ostringstream out;
  write_graph(out, sc.graph);
  std::istringstream in(out.str());
  const net::Graph g2 = read_graph(in);
  ASSERT_EQ(g2.n(), sc.graph.n());
  EXPECT_EQ(g2.edge_count(), sc.graph.edge_count());
  for (int v = 0; v < g2.n(); ++v) {
    EXPECT_EQ(g2.position(v).x, sc.graph.position(v).x);
    for (int w : sc.graph.neighbors(v)) {
      EXPECT_TRUE(g2.has_edge(v, w));
    }
  }
  // And the pipeline gives identical results on the round-tripped graph.
  const core::SkeletonResult a = core::extract_skeleton(sc.graph, {});
  const core::SkeletonResult b = core::extract_skeleton(g2, {});
  EXPECT_EQ(a.skeleton.nodes(), b.skeleton.nodes());
}

TEST(GraphIo, SkeletonExports) {
  core::SkeletonGraph sk(5);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_node(4);  // isolated
  std::ostringstream edges;
  write_skeleton(edges, sk);
  EXPECT_NE(edges.str().find("e 0 1"), std::string::npos);
  EXPECT_NE(edges.str().find("e 1 2"), std::string::npos);
  EXPECT_NE(edges.str().find("v 4"), std::string::npos);

  net::Graph g(std::vector<geom::Vec2>{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
  std::ostringstream dot;
  write_skeleton_dot(dot, g, sk);
  const std::string s = dot.str();
  EXPECT_NE(s.find("graph skeleton"), std::string::npos);
  EXPECT_NE(s.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(s.find("pos=\"1,0!\""), std::string::npos);
  EXPECT_NE(s.find("n4"), std::string::npos);
}

}  // namespace
}  // namespace skelex::io
