#include "core/identify.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"

namespace skelex::core {
namespace {

// Path graph with a crafted index profile: one clear peak at node 3.
TEST(IsLocalMax, SinglePeak) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  const std::vector<double> idx{1, 2, 3, 9, 3, 2, 1};
  EXPECT_TRUE(is_local_max(g, idx, 3, 2));
  EXPECT_FALSE(is_local_max(g, idx, 2, 2));
  EXPECT_FALSE(is_local_max(g, idx, 4, 1));
  // Node 0 with radius 1 only sees node 1, which beats it.
  EXPECT_FALSE(is_local_max(g, idx, 0, 1));
  // Node 6 with radius 1 sees node 5 (value 2 > 1).
  EXPECT_FALSE(is_local_max(g, idx, 6, 1));
}

TEST(IsLocalMax, TiesBreakTowardSmallerId) {
  net::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::vector<double> idx{5, 5, 5};
  EXPECT_TRUE(is_local_max(g, idx, 0, 2));
  EXPECT_FALSE(is_local_max(g, idx, 1, 2));
  EXPECT_FALSE(is_local_max(g, idx, 2, 2));
}

TEST(IdentifyCriticalNodes, FindsExactlyThePeaks) {
  net::Graph g(9);
  for (int i = 0; i < 8; ++i) g.add_edge(i, i + 1);
  IndexData d;
  d.khop_size.assign(9, 0);
  d.centrality.assign(9, 0.0);
  d.index = {1, 5, 1, 1, 7, 1, 1, 6, 1};
  Params p;
  p.k = 1;
  p.l = 1;
  p.local_max_radius = 1;
  EXPECT_EQ(identify_critical_nodes(g, d, p), (std::vector<int>{1, 4, 7}));
  // Radius 3: peaks 1 and 4 are within 3 hops; 4 beats 1, 7 within 3 of 4.
  p.local_max_radius = 3;
  EXPECT_EQ(identify_critical_nodes(g, d, p), (std::vector<int>{4}));
}

TEST(IdentifyCriticalNodes, ValidatesInput) {
  net::Graph g(3);
  IndexData d;
  d.index.assign(2, 0.0);  // wrong size
  EXPECT_THROW(identify_critical_nodes(g, d, Params{}), std::invalid_argument);
}

// Structural property on a realistic network: two distinct critical
// nodes are never within local_max_radius hops of each other (one of
// them would have lost the comparison).
TEST(IdentifyCriticalNodes, CriticalNodesAreHopSeparated) {
  const geom::Region region = geom::shapes::flower();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1500;
  spec.target_avg_deg = 7.0;
  spec.seed = 5;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  Params p;  // defaults: k = l = 4, radius = 4
  const IndexData d = compute_index(sc.graph, p);
  const std::vector<int> crit = identify_critical_nodes(sc.graph, d, p);
  ASSERT_GE(crit.size(), 2u);
  const int r = p.effective_local_max_radius();
  for (std::size_t i = 0; i < crit.size(); ++i) {
    const auto dist = net::bfs_distances(sc.graph, crit[i], r);
    for (std::size_t j = 0; j < crit.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(dist[static_cast<std::size_t>(crit[j])], net::kUnreached)
          << crit[i] << " and " << crit[j] << " are both critical but close";
    }
  }
}

TEST(IdentifyCriticalNodes, EveryNodeCoveredByACriticalNode) {
  // Every node has SOME critical node within local_max_radius hops... not
  // guaranteed in general graphs, but on a connected network each node's
  // r-hop ball contains a local max chain; verify the weaker guarantee
  // that at least one critical node exists per connected network.
  const geom::Region region = geom::shapes::star();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1000;
  spec.target_avg_deg = 7.0;
  spec.seed = 6;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  Params p;
  const IndexData d = compute_index(sc.graph, p);
  EXPECT_FALSE(identify_critical_nodes(sc.graph, d, p).empty());
}

}  // namespace
}  // namespace skelex::core
