#include "core/index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/khop.h"

namespace skelex::core {
namespace {

TEST(Params, Validation) {
  Params p;
  EXPECT_NO_THROW(p.validate());
  p.k = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.alpha = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.hole_khop_ratio = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.prune_len = -2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, EffectiveDefaults) {
  Params p;
  EXPECT_EQ(p.effective_local_max_radius(), 2);  // documented default
  p.local_max_radius = 3;
  EXPECT_EQ(p.effective_local_max_radius(), 3);
  p.l = 4;
  p.local_max_radius = 0;  // 0 = derive from l
  EXPECT_EQ(p.effective_local_max_radius(), 4);
  p.l = 0;
  EXPECT_EQ(p.effective_local_max_radius(), 1);
  p.k = 3;
  EXPECT_EQ(p.effective_fake_pocket_min_size(), 18);
  p.fake_pocket_min_size = 5;
  EXPECT_EQ(p.effective_fake_pocket_min_size(), 5);
}

TEST(ComputeIndex, IsAverageOfSizeAndCentrality) {
  net::Graph g(5);  // path
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  Params p;
  p.k = 2;
  p.l = 1;
  const IndexData d = compute_index(g, p);
  const auto sizes = net::khop_sizes(g, 2);
  const auto cent = net::l_centrality(g, sizes, 1, false);
  ASSERT_EQ(d.index.size(), 5u);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(d.khop_size[v], sizes[v]);
    EXPECT_DOUBLE_EQ(d.centrality[v], cent[v]);
    EXPECT_DOUBLE_EQ(d.index[v], 0.5 * (sizes[v] + cent[v]));
  }
}

// Observation 1 & 2 of the paper: in a corridor, nodes near the medial
// line have higher k-hop sizes / centrality / index than nodes hugging
// the boundary.
TEST(ComputeIndex, MedialNodesBeatBoundaryNodesInACorridor) {
  const geom::Region corridor = geom::shapes::corridor(100.0, 16.0);
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1200;
  spec.target_avg_deg = 9.0;
  spec.seed = 21;
  const deploy::Scenario sc = deploy::make_udg_scenario(corridor, spec);
  const net::Graph& g = sc.graph;
  const IndexData d = compute_index(g, Params{});

  // Average index of mid-band nodes vs rim-band nodes, away from the
  // corridor's short ends (x in [25, 75]).
  double mid_sum = 0, rim_sum = 0;
  int mid_n = 0, rim_n = 0;
  for (int v = 0; v < g.n(); ++v) {
    const geom::Vec2 p = g.position(v);
    if (p.x < 25 || p.x > 75) continue;
    const double band = std::abs(p.y - 8.0);
    if (band < 2.0) {
      mid_sum += d.index[static_cast<std::size_t>(v)];
      ++mid_n;
    } else if (band > 6.0) {
      rim_sum += d.index[static_cast<std::size_t>(v)];
      ++rim_n;
    }
  }
  ASSERT_GT(mid_n, 10);
  ASSERT_GT(rim_n, 10);
  EXPECT_GT(mid_sum / mid_n, 1.2 * (rim_sum / rim_n));
}

TEST(ComputeIndex, LZeroUsesOwnSizeAsCentrality) {
  net::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Params p;
  p.k = 1;
  p.l = 0;
  const IndexData d = compute_index(g, p);
  for (std::size_t v = 0; v < 3; ++v) {
    EXPECT_DOUBLE_EQ(d.centrality[v], d.khop_size[v]);
    EXPECT_DOUBLE_EQ(d.index[v], d.khop_size[v]);
  }
}

}  // namespace
}  // namespace skelex::core
