// Broad invariant sweep: the pipeline's structural guarantees must hold
// for every shape x seed combination, not just the tuned scenarios.
// Each instance is small (fast); the value is in the breadth.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"

namespace skelex {
namespace {

struct SweepCase {
  const char* shape;
  std::uint64_t seed;
};

class InvariantSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(InvariantSweep, StructuralGuarantees) {
  const auto [shape, seed] = GetParam();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 700;
  spec.target_avg_deg = 7.5;
  spec.seed = seed;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::by_name(shape), spec);
  const net::Graph& g = sc.graph;
  const core::SkeletonResult r = core::extract_skeleton(g, core::Params{});

  // 1. Non-empty skeleton, one component per network component.
  ASSERT_GT(r.skeleton.node_count(), 0);
  EXPECT_EQ(r.skeleton.component_count(),
            net::connected_components(g).count);

  // 2. Every skeleton edge is a network link; every node id is valid.
  for (int v : r.skeleton.nodes()) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, g.n());
    for (int w : r.skeleton.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(v, w));
    }
  }

  // 3. Every site is part of the COARSE skeleton (pruning may later trim
  // whole limbs, so the final skeleton holds no such guarantee).
  for (int s : r.voronoi().sites) {
    EXPECT_TRUE(r.coarse().has_node(s)) << "site " << s;
  }

  // 4. Segmentation partitions the graph.
  EXPECT_EQ(std::accumulate(r.segmentation.segment_size.begin(),
                            r.segmentation.segment_size.end(), 0),
            g.n());

  // 5. Distance transform is a valid BFS field: zero exactly on the
  // skeleton, neighbors differ by at most 1.
  for (int v = 0; v < g.n(); ++v) {
    const int dv = r.boundary.dist_to_skeleton[static_cast<std::size_t>(v)];
    EXPECT_EQ(dv == 0, r.skeleton.has_node(v));
    for (int w : g.neighbors(v)) {
      const int dw = r.boundary.dist_to_skeleton[static_cast<std::size_t>(w)];
      EXPECT_LE(std::abs(dv - dw), 1);
    }
  }

  // 6. Determinism.
  const core::SkeletonResult r2 = core::extract_skeleton(g, core::Params{});
  EXPECT_EQ(r.skeleton.nodes(), r2.skeleton.nodes());
  EXPECT_EQ(r.skeleton.edge_count(), r2.skeleton.edge_count());
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* shape : {"disk", "rect", "annulus", "lshape", "tshape",
                            "hshape", "ushape", "cross", "corridor",
                            "window", "star", "two_holes"}) {
    for (std::uint64_t seed : {101u, 202u, 303u}) {
      cases.push_back({shape, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, InvariantSweep, ::testing::ValuesIn(sweep_cases()),
    [](const auto& info) {
      return std::string(info.param.shape) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace skelex
