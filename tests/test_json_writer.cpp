// io::JsonWriter: byte-stable output, full string escaping (quotes,
// backslashes, C0 control characters), and `null` for NaN/Inf — JSON
// has no non-finite number tokens, and a "nan" in a report breaks every
// downstream parser.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "io/json.h"

namespace {

using skelex::io::JsonWriter;

TEST(JsonWriter, ObjectAndArrayShape) {
  JsonWriter j;
  j.begin_object();
  j.key("a").value(1);
  j.key("b").begin_array();
  j.value(1).value(2.5).value(true).value("x");
  j.end_array();
  j.end_object();
  EXPECT_EQ(j.str(), "{\"a\": 1, \"b\": [1, 2.5, true, \"x\"]}");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControls) {
  JsonWriter j;
  j.value("quote\" back\\slash\nnewline\ttab\rcr\x01" "bell\x07");
  EXPECT_EQ(j.str(),
            "\"quote\\\" back\\\\slash\\nnewline\\ttab\\rcr\\u0001bell"
            "\\u0007\"");
}

TEST(JsonWriter, EscapesKeysToo) {
  JsonWriter j;
  j.begin_object();
  j.key("a\"b\\c").value(1);
  j.end_object();
  EXPECT_EQ(j.str(), "{\"a\\\"b\\\\c\": 1}");
}

TEST(JsonWriter, HighBitBytesPassThroughUnmangled) {
  // UTF-8 multibyte sequences must survive (only C0 is escaped; the
  // unsigned cast keeps 0x80.. bytes out of the < 0x20 branch).
  JsonWriter j;
  j.value("caf\xc3\xa9");
  EXPECT_EQ(j.str(), "\"caf\xc3\xa9\"");
}

TEST(JsonWriter, NonFiniteDoublesEmitNull) {
  JsonWriter j;
  j.begin_array();
  j.value(std::numeric_limits<double>::quiet_NaN());
  j.value(std::numeric_limits<double>::infinity());
  j.value(-std::numeric_limits<double>::infinity());
  j.value(1.5);
  j.null_value();
  j.end_array();
  EXPECT_EQ(j.str(), "[null, null, null, 1.5, null]");
}

TEST(JsonWriter, NumbersAreShortestRoundTrip) {
  JsonWriter j;
  j.begin_array();
  j.value(0.1);
  j.value(1e300);
  j.value(-7LL);
  j.end_array();
  EXPECT_EQ(j.str(), "[0.1, 1e+300, -7]");
}

}  // namespace
