#include "net/khop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "deploy/deployment.h"
#include "deploy/rng.h"
#include "geometry/shapes.h"
#include "net/bfs.h"

namespace skelex::net {
namespace {

Graph random_udg(int n, double range, std::uint64_t seed) {
  deploy::Rng rng(seed);
  auto pts = deploy::uniform_in_region(geom::shapes::rect(30, 30), n, rng);
  return build_udg(std::move(pts), range);
}

TEST(KhopNeighbors, SmallGraphExact) {
  Graph g(6);  // path 0-1-2-3-4-5
  for (int i = 0; i < 5; ++i) g.add_edge(i, i + 1);
  const auto n2 = khop_neighbors(g, 2, 2);
  const std::set<int> got(n2.begin(), n2.end());
  EXPECT_EQ(got, (std::set<int>{0, 1, 3, 4}));
  EXPECT_TRUE(khop_neighbors(g, 2, 0).empty());
  EXPECT_THROW(khop_neighbors(g, 9, 1), std::out_of_range);
  EXPECT_THROW(khop_neighbors(g, 0, -1), std::invalid_argument);
}

// Property: khop_sizes agrees with per-node truncated BFS, across graph
// sizes and k values.
class KhopSizesTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(KhopSizesTest, MatchesBfsCount) {
  const auto [n, k, seed] = GetParam();
  const Graph g = random_udg(n, 3.5, seed);
  const auto sizes = khop_sizes(g, k);
  ASSERT_EQ(sizes.size(), static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v) {
    const auto d = bfs_distances(g, v, k);
    int count = 0;
    for (int x : d) {
      if (x > 0) ++count;  // within k hops, not self
    }
    EXPECT_EQ(sizes[static_cast<std::size_t>(v)], count) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KhopSizesTest,
    ::testing::Combine(::testing::Values(1, 30, 150),
                       ::testing::Values(1, 2, 4, 7),
                       ::testing::Values(3u, 77u)));

TEST(KhopSizes, KZeroIsAllZeros) {
  const Graph g = random_udg(50, 4.0, 5);
  for (int s : khop_sizes(g, 0)) EXPECT_EQ(s, 0);
}

TEST(KhopSizes, DegreeEqualsOneHop) {
  const Graph g = random_udg(120, 4.0, 9);
  const auto sizes = khop_sizes(g, 1);
  for (int v = 0; v < g.n(); ++v) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(v)], g.degree(v));
  }
}

TEST(LCentrality, DefinitionMatchesBruteForce) {
  const Graph g = random_udg(100, 4.0, 13);
  const auto sizes = khop_sizes(g, 3);
  const auto cent = l_centrality(g, sizes, 2, /*include_self=*/false);
  for (int v = 0; v < g.n(); ++v) {
    const auto nb = khop_neighbors(g, v, 2);
    double expected;
    if (nb.empty()) {
      expected = sizes[static_cast<std::size_t>(v)];
    } else {
      long long sum = 0;
      for (int w : nb) sum += sizes[static_cast<std::size_t>(w)];
      expected = static_cast<double>(sum) / static_cast<double>(nb.size());
    }
    EXPECT_DOUBLE_EQ(cent[static_cast<std::size_t>(v)], expected);
  }
}

TEST(LCentrality, IncludeSelfShiftsAverage) {
  Graph g(3);  // path 0-1-2
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto sizes = khop_sizes(g, 1);  // degrees: 1, 2, 1
  const auto without = l_centrality(g, sizes, 1, false);
  const auto with = l_centrality(g, sizes, 1, true);
  // Node 0: neighbors {1} -> 2; with self: (1+2)/2 = 1.5.
  EXPECT_DOUBLE_EQ(without[0], 2.0);
  EXPECT_DOUBLE_EQ(with[0], 1.5);
  // Node 1: neighbors {0,2} -> 1; with self: (2+1+1)/3 = 4/3.
  EXPECT_DOUBLE_EQ(without[1], 1.0);
  EXPECT_DOUBLE_EQ(with[1], 4.0 / 3.0);
}

TEST(LCentrality, IsolatedNodeFallsBackToOwnSize) {
  Graph g(2);  // no edges
  const auto sizes = khop_sizes(g, 3);
  const auto cent = l_centrality(g, sizes, 3, false);
  EXPECT_DOUBLE_EQ(cent[0], 0.0);
}

TEST(LCentrality, Validation) {
  Graph g(3);
  std::vector<int> wrong_size(2, 0);
  EXPECT_THROW(l_centrality(g, wrong_size, 1), std::invalid_argument);
  std::vector<int> ok(3, 0);
  EXPECT_THROW(l_centrality(g, ok, -1), std::invalid_argument);
}

}  // namespace
}  // namespace skelex::net
