// Structured logger (obs/log.h): JSON shape, level filtering, request-id
// stamping from the ambient RequestContext, and deterministic
// rate-limiting via the injected clock.
#include "obs/log.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/request_trace.h"

namespace obs = skelex::obs;

namespace {

// A fresh Logger per test (the global one is shared process state).
struct CapturedLogger {
  obs::Logger logger;
  std::vector<std::string> lines;

  CapturedLogger() {
    logger.set_sink([this](std::string_view line) {
      lines.emplace_back(line);
    });
  }
};

TEST(Log, EmitsStableKeyOrderJson) {
  CapturedLogger cap;
  ASSERT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "unit_event",
                             {{"count", 3}, {"name", "abc"}, {"ok", true}}));
  ASSERT_EQ(cap.lines.size(), 1u);
  const std::string& line = cap.lines[0];
  EXPECT_NE(line.find("\"ts_ms\": "), std::string::npos) << line;
  EXPECT_NE(line.find("\"level\": \"info\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\": \"unit_event\""), std::string::npos);
  EXPECT_NE(line.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(line.find("\"name\": \"abc\""), std::string::npos);
  EXPECT_NE(line.find("\"ok\": true"), std::string::npos);
  // Keys come in the documented order: ts_ms, level, event, fields.
  EXPECT_LT(line.find("\"ts_ms\""), line.find("\"level\""));
  EXPECT_LT(line.find("\"level\""), line.find("\"event\""));
  EXPECT_LT(line.find("\"event\""), line.find("\"count\""));
}

TEST(Log, LevelFilterDropsBelowMin) {
  CapturedLogger cap;
  cap.logger.set_min_level(obs::LogLevel::kWarn);
  EXPECT_FALSE(cap.logger.log(obs::LogLevel::kInfo, "dropped"));
  EXPECT_TRUE(cap.logger.log(obs::LogLevel::kWarn, "kept"));
  EXPECT_TRUE(cap.logger.log(obs::LogLevel::kError, "kept_too"));
  EXPECT_EQ(cap.lines.size(), 2u);
}

TEST(Log, ParseLogLevelRoundTrips) {
  obs::LogLevel level;
  ASSERT_TRUE(obs::parse_log_level("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  ASSERT_TRUE(obs::parse_log_level("error", &level));
  EXPECT_EQ(level, obs::LogLevel::kError);
  EXPECT_FALSE(obs::parse_log_level("loud", &level));
  EXPECT_STREQ(obs::log_level_name(obs::LogLevel::kWarn), "warn");
}

TEST(Log, StampsAmbientRequestId) {
  CapturedLogger cap;
  {
    obs::RequestContext ctx(777, /*record_spans=*/false);
    obs::ScopedRequestContext install(&ctx);
    ASSERT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "inside"));
  }
  ASSERT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "outside"));
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_NE(cap.lines[0].find("\"req\": 777"), std::string::npos)
      << cap.lines[0];
  EXPECT_EQ(cap.lines[1].find("\"req\""), std::string::npos) << cap.lines[1];
  // The req key sits between event and the caller fields.
  EXPECT_LT(cap.lines[0].find("\"event\""), cap.lines[0].find("\"req\""));
}

TEST(Log, RateLimitSuppressesAndRecovers) {
  CapturedLogger cap;
  double fake_now_us = 0;
  cap.logger.set_clock_for_test([&fake_now_us] { return fake_now_us; });
  cap.logger.set_rate_limit(/*per_sec=*/10, /*burst=*/2);

  // Burst of 2 passes, the next 5 are suppressed.
  EXPECT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "spam"));
  EXPECT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "spam"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(cap.logger.log(obs::LogLevel::kInfo, "spam"));
  }
  // An unrelated event has its own bucket.
  EXPECT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "other"));

  // 150ms at 10/s refills 1.5 tokens (an exact-one refill can round a
  // hair below 1.0 in double); the recovery line carries the count.
  fake_now_us += 150'000;
  EXPECT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "spam"));
  const std::string& recovery = cap.lines.back();
  EXPECT_NE(recovery.find("\"suppressed\": 5"), std::string::npos) << recovery;
  // And the counter is spent again.
  EXPECT_FALSE(cap.logger.log(obs::LogLevel::kInfo, "spam"));

  const obs::Logger::Counters counters = cap.logger.counters();
  EXPECT_EQ(counters.emitted, 4);
  EXPECT_EQ(counters.suppressed, 6);
}

TEST(Log, RateLimitDisabledPassesEverything) {
  CapturedLogger cap;
  cap.logger.set_rate_limit(0, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "flood"));
  }
  EXPECT_EQ(cap.lines.size(), 100u);
}

TEST(Log, EscapesStringFields) {
  CapturedLogger cap;
  ASSERT_TRUE(cap.logger.log(obs::LogLevel::kInfo, "esc",
                             {{"msg", "a\"b\\c\nd"}}));
  EXPECT_NE(cap.lines[0].find("\"msg\": \"a\\\"b\\\\c\\nd\""),
            std::string::npos)
      << cap.lines[0];
}

}  // namespace
