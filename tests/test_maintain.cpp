// Self-healing skeletons: the invariant checker, canonical stable-space
// extraction, three-tier incremental repair (exactness against the
// from-scratch ground truth), staleness batching + watchdog, and the
// randomized churn soak (also exercised under ASan/TSan via
// run_sanitized_tests.sh's ChurnSoak filter).
#include "core/maintain.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/memo/stage_cache.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/graph.h"
#include "sim/dynamics.h"

namespace skelex {
namespace {

using core::MaintainOptions;
using core::RepairOutcome;
using core::RepairTier;
using core::SkeletonMaintainer;

deploy::Scenario disk_scenario(int nodes, std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 10.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::disk(16.0), spec);
}

// A long thin corridor: hop diameter far beyond the dirty-region
// radius, so sub-global repair tiers are actually reachable (in a small
// disk every dirty ball covers the whole network and every repair
// escalates to the full tier).
deploy::Scenario corridor_scenario(int nodes, std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 10.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::corridor(), spec);
}

// Tight stage-1 radii keep the locality bound (k + l +
// local_max_radius) small relative to the corridor's hop diameter.
MaintainOptions regional_options() {
  MaintainOptions opt;
  opt.params.k = 2;
  opt.params.l = 2;
  opt.params.local_max_radius = 1;
  opt.full_rebuild_fraction = 0.6;
  return opt;
}

sim::ChurnScript::RandomSpec churn_spec(double range, int rounds,
                                        double rate) {
  sim::ChurnScript::RandomSpec spec;
  spec.rounds = rounds;
  spec.join_rate = rate;
  spec.leave_rate = rate;
  spec.link_add_rate = 2 * rate;
  spec.link_remove_rate = 2 * rate;
  spec.range = range;
  return spec;
}

void expect_stage12_matches_canonical(const SkeletonMaintainer& maint,
                                      const core::SkeletonResult& truth) {
  const core::SkeletonResult& served = maint.served();
  EXPECT_EQ(served.index().khop_size, truth.index().khop_size);
  EXPECT_EQ(served.index().centrality, truth.index().centrality);
  EXPECT_EQ(served.index().index, truth.index().index);
  EXPECT_EQ(served.critical_nodes, truth.critical_nodes);
  EXPECT_EQ(served.voronoi().sites, truth.voronoi().sites);
  EXPECT_EQ(served.voronoi().site_of, truth.voronoi().site_of);
  EXPECT_EQ(served.voronoi().dist, truth.voronoi().dist);
  EXPECT_EQ(served.voronoi().parent, truth.voronoi().parent);
  EXPECT_EQ(served.voronoi().site2_of, truth.voronoi().site2_of);
  EXPECT_EQ(served.voronoi().dist2, truth.voronoi().dist2);
  EXPECT_EQ(served.voronoi().via2, truth.voronoi().via2);
  EXPECT_EQ(served.voronoi().is_segment, truth.voronoi().is_segment);
  EXPECT_EQ(served.voronoi().is_voronoi_node, truth.voronoi().is_voronoi_node);
  EXPECT_EQ(served.voronoi().nearby, truth.voronoi().nearby);
}

TEST(InvariantChecker, CleanExtractionPasses) {
  const auto scn = corridor_scenario(400, 5);
  sim::DynamicTopology topo(scn.graph);
  const core::SkeletonResult r = core::extract_skeleton(topo.graph());
  const auto rep =
      core::check_skeleton_invariants(topo.csr(), topo.active(), r);
  EXPECT_TRUE(rep.ok()) << rep.violations.front();
}

TEST(InvariantChecker, DetectsFabricatedViolations) {
  const auto scn = corridor_scenario(400, 5);
  sim::DynamicTopology topo(scn.graph);
  core::SkeletonResult r = core::extract_skeleton(topo.graph());
  ASSERT_GT(r.skeleton.node_count(), 1);

  // An inactive skeleton node (and, transitively, inactive-site /
  // uncovered checks) — deactivate one skeleton node in the mask only.
  {
    std::vector<char> active(topo.active().begin(), topo.active().end());
    active[static_cast<std::size_t>(r.skeleton.nodes().front())] = 0;
    const auto rep = core::check_skeleton_invariants(
        topo.csr(), {active.data(), active.size()}, r);
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.inactive_skeleton_nodes, 1);
  }

  // A phantom edge: connect two skeleton nodes that share no link.
  {
    core::SkeletonResult bad = r;
    const auto nodes = bad.skeleton.nodes();
    bool planted = false;
    for (std::size_t i = 0; i < nodes.size() && !planted; ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        if (!topo.graph().has_edge(nodes[i], nodes[j]) &&
            !bad.skeleton.has_edge(nodes[i], nodes[j])) {
          bad.skeleton.add_edge(nodes[i], nodes[j]);
          planted = true;
          break;
        }
      }
    }
    ASSERT_TRUE(planted);
    const auto rep =
        core::check_skeleton_invariants(topo.csr(), topo.active(), bad);
    EXPECT_FALSE(rep.ok());
    EXPECT_GE(rep.phantom_skeleton_edges, 1);
  }

  // An empty skeleton over a live network.
  {
    core::SkeletonResult empty;
    core::VoronoiResult ev;
    ev.site_of.assign(static_cast<std::size_t>(topo.n()), -1);
    empty.set_voronoi(std::move(ev));
    const auto rep =
        core::check_skeleton_invariants(topo.csr(), topo.active(), empty);
    EXPECT_FALSE(rep.ok());
    EXPECT_TRUE(rep.empty_skeleton);
    EXPECT_GE(rep.uncovered_components, 1);
    EXPECT_EQ(rep.unassigned_active_nodes, topo.active_count());
  }

  // Mask size mismatch is a caller bug, not a degradation.
  std::vector<char> wrong(3, 1);
  EXPECT_THROW((void)core::check_skeleton_invariants(
                   topo.csr(), {wrong.data(), wrong.size()}, r),
               std::invalid_argument);
}

// The stable-id-space canonical extraction must equal the from-scratch
// extraction of the compacted active subgraph, modulo the (monotone) id
// remap — departed nodes are invisible to every stage.
TEST(Maintainer, CanonicalMatchesCompactExtraction) {
  const auto scn = disk_scenario(250, 17);
  sim::DynamicTopology topo(scn.graph);
  const sim::ChurnScript script = sim::ChurnScript::random(
      scn.graph, churn_spec(scn.range, 20, 0.4), 23);
  for (int round = 0; round < 20; ++round) (void)topo.apply_round(script, round);
  ASSERT_LT(topo.active_count(), topo.n());  // some churn actually happened

  SkeletonMaintainer maint(topo, {});
  const core::SkeletonResult truth = maint.canonical();

  std::vector<int> orig_of_new;
  const net::Graph compact = topo.active_subgraph(&orig_of_new);
  const core::SkeletonResult ref = core::extract_skeleton(compact);

  // Remap the compact skeleton into the stable id space and compare.
  core::SkeletonGraph remapped(topo.n());
  for (int v : ref.skeleton.nodes()) {
    remapped.add_node(orig_of_new[static_cast<std::size_t>(v)]);
    for (int w : ref.skeleton.neighbors(v)) {
      if (w > v) continue;
      remapped.add_edge(orig_of_new[static_cast<std::size_t>(v)],
                        orig_of_new[static_cast<std::size_t>(w)]);
    }
  }
  EXPECT_EQ(core::skeleton_fingerprint(truth.skeleton),
            core::skeleton_fingerprint(remapped));

  // Critical sets agree under the same remap.
  std::vector<int> remapped_crit;
  for (int v : ref.critical_nodes) {
    remapped_crit.push_back(orig_of_new[static_cast<std::size_t>(v)]);
  }
  EXPECT_EQ(truth.critical_nodes, remapped_crit);
}

TEST(Maintainer, RepairsTrackCanonicalUnderScriptedChurn) {
  const auto scn = corridor_scenario(500, 41);
  sim::DynamicTopology topo(scn.graph);
  const sim::ChurnScript script = sim::ChurnScript::random(
      scn.graph, churn_spec(scn.range, 30, 0.25), 7);

  SkeletonMaintainer maint(topo, regional_options());
  maint.initialize();
  ASSERT_TRUE(maint.check().ok());

  int repairs = 0;
  for (int round = 0; round < 30; ++round) {
    const RepairOutcome out = maint.advance(script, round);
    ASSERT_TRUE(out.invariants_ok) << "round " << round;
    ASSERT_TRUE(maint.healthy());
    const auto rep = maint.check();
    ASSERT_TRUE(rep.ok()) << "round " << round << ": "
                          << rep.violations.front();
    if (!out.repaired) continue;
    ++repairs;
    const core::SkeletonResult truth = maint.canonical();
    // The cached stage-1/2 state is canonical after EVERY repair tier.
    expect_stage12_matches_canonical(maint, truth);
    // Tier 1+ results are bit-identical to a from-scratch extraction.
    if (out.tier != RepairTier::kLocalPatch) {
      EXPECT_EQ(maint.served_fingerprint(),
                core::skeleton_fingerprint(truth.skeleton))
          << "round " << round << " tier " << core::repair_tier_name(out.tier);
    }
  }
  ASSERT_GT(repairs, 0);
  EXPECT_EQ(maint.stats().invariant_failures, 0);
  EXPECT_EQ(maint.stats().repairs_total(), repairs);
}

TEST(Maintainer, ForceFullAlwaysMatchesCanonical) {
  const auto scn = disk_scenario(180, 9);
  sim::DynamicTopology topo(scn.graph);
  const sim::ChurnScript script = sim::ChurnScript::random(
      scn.graph, churn_spec(scn.range, 12, 0.3), 13);
  MaintainOptions opt;
  opt.force_full = true;
  SkeletonMaintainer maint(topo, opt);
  for (int round = 0; round < 12; ++round) {
    const RepairOutcome out = maint.advance(script, round);
    if (out.repaired) {
      EXPECT_EQ(out.tier, RepairTier::kFullRecompute);
      EXPECT_EQ(maint.served_fingerprint(),
                core::skeleton_fingerprint(maint.canonical().skeleton));
    }
  }
  EXPECT_EQ(maint.stats().repairs_local, 0);
  EXPECT_EQ(maint.stats().repairs_regional, 0);
}

TEST(Maintainer, LazyIntervalBatchesAndWatchdogBoundsStaleness) {
  const auto scn = disk_scenario(200, 29);
  sim::DynamicTopology topo(scn.graph);
  const sim::ChurnScript script = sim::ChurnScript::random(
      scn.graph, churn_spec(scn.range, 24, 0.5), 3);

  MaintainOptions lazy;
  lazy.repair_interval = 4;
  lazy.staleness_bound = 16;
  SkeletonMaintainer maint(topo, lazy);
  maint.initialize();
  for (int round = 0; round < 24; ++round) {
    const RepairOutcome out = maint.advance(script, round);
    EXPECT_LE(out.staleness, 3);  // repaired whenever staleness hits 4
    if (out.deferred) {
      EXPECT_FALSE(out.repaired);
    }
  }
  EXPECT_GT(maint.stats().repairs_total(), 0);
  EXPECT_LT(maint.stats().repairs_total(), maint.stats().rounds);
  EXPECT_LE(maint.stats().max_staleness, 4);
  EXPECT_EQ(maint.stats().watchdog_forced, 0);

  // With a huge interval, only the watchdog repairs — at the bound, with
  // a forced full recompute.
  sim::DynamicTopology topo2(scn.graph);
  MaintainOptions bounded;
  bounded.repair_interval = 1000;
  bounded.staleness_bound = 6;
  SkeletonMaintainer maint2(topo2, bounded);
  maint2.initialize();
  for (int round = 0; round < 24; ++round) {
    const RepairOutcome out = maint2.advance(script, round);
    EXPECT_LE(out.staleness, 5);
    if (out.repaired) {
      EXPECT_EQ(out.tier, RepairTier::kFullRecompute);
    }
  }
  EXPECT_GT(maint2.stats().watchdog_forced, 0);
  EXPECT_EQ(maint2.stats().repairs_full, maint2.stats().repairs_total());
  EXPECT_LE(maint2.stats().max_staleness, 6);
}

TEST(Maintainer, ValidatesOptions) {
  const auto scn = disk_scenario(60, 1);
  sim::DynamicTopology topo(scn.graph);
  MaintainOptions opt;
  opt.repair_interval = 0;
  EXPECT_THROW(SkeletonMaintainer(topo, opt), std::invalid_argument);
  opt = {};
  opt.staleness_bound = 0;
  EXPECT_THROW(SkeletonMaintainer(topo, opt), std::invalid_argument);
  opt = {};
  opt.full_rebuild_fraction = 0.0;
  EXPECT_THROW(SkeletonMaintainer(topo, opt), std::invalid_argument);
  opt = {};
  opt.dirty_radius = -1;
  EXPECT_THROW(SkeletonMaintainer(topo, opt), std::invalid_argument);
  opt = {};
  SkeletonMaintainer ok(topo, opt);
  // k + l + effective_local_max_radius with the paper defaults.
  EXPECT_EQ(ok.effective_dirty_radius(), 10);
}

// A cache-backed maintainer keys its tail stages (assess/coarse/cleanup/
// prune/byproducts) on the stage-1/2 CONTENT fingerprint, so canonical
// extractions over unchanged content replay from the shared cache.
TEST(Maintainer, CanonicalWarmHitsTailCache) {
  const auto scn = disk_scenario(250, 17);
  sim::DynamicTopology topo(scn.graph);
  core::memo::StageCache cache;
  MaintainOptions opt;
  opt.cache = &cache;
  SkeletonMaintainer maint(topo, opt);

  const core::SkeletonResult first = maint.canonical();
  const auto cold = cache.stats();
  EXPECT_EQ(cold.misses, 5);  // the five tail stages
  EXPECT_EQ(cold.insertions, 5);

  const core::SkeletonResult second = maint.canonical();
  const auto warm = cache.stats();
  EXPECT_EQ(warm.hits - cold.hits, 5);
  EXPECT_EQ(warm.misses, cold.misses);

  // And the cache changes nothing about WHAT is served.
  SkeletonMaintainer plain(topo, {});
  const std::uint64_t want =
      core::skeleton_fingerprint(plain.canonical().skeleton);
  EXPECT_EQ(core::skeleton_fingerprint(first.skeleton), want);
  EXPECT_EQ(core::skeleton_fingerprint(second.skeleton), want);
}

// Under churn, the cache-backed maintainer serves bit-identical
// skeletons to an uncached twin at every round — memoization must never
// change repair outcomes, only skip recomputation.
TEST(Maintainer, CacheBackedRepairsMatchUncached) {
  const auto scn = corridor_scenario(500, 41);
  const sim::ChurnScript script = sim::ChurnScript::random(
      scn.graph, churn_spec(scn.range, 30, 0.25), 7);

  sim::DynamicTopology topo_cached(scn.graph);
  sim::DynamicTopology topo_plain(scn.graph);
  core::memo::StageCache cache;
  MaintainOptions cached_opt = regional_options();
  cached_opt.cache = &cache;
  SkeletonMaintainer cached(topo_cached, cached_opt);
  SkeletonMaintainer plain(topo_plain, regional_options());
  cached.initialize();
  plain.initialize();
  EXPECT_EQ(cached.served_fingerprint(), plain.served_fingerprint());

  for (int round = 0; round < 30; ++round) {
    (void)cached.advance(script, round);
    (void)plain.advance(script, round);
    ASSERT_EQ(cached.served_fingerprint(), plain.served_fingerprint())
        << "round " << round;
    ASSERT_TRUE(cached.check().ok()) << "round " << round;
  }
  EXPECT_GT(cache.stats().insertions, 0);

  // Ground truths agree, and a repeated canonical() replays fully warm.
  const core::SkeletonResult truth = cached.canonical();
  EXPECT_EQ(core::skeleton_fingerprint(truth.skeleton),
            core::skeleton_fingerprint(plain.canonical().skeleton));
  const auto before = cache.stats();
  (void)cached.canonical();
  const auto after = cache.stats();
  EXPECT_EQ(after.hits - before.hits, 5);
  EXPECT_EQ(after.misses, before.misses);
}

// Randomized long-run soak: continuous mixed churn, invariants checked
// EVERY round, plus periodic full cross-checks against the canonical
// extraction. This test (by the ChurnSoak name) is part of the
// sanitizer gate in scripts/run_sanitized_tests.sh.
TEST(ChurnSoak, InvariantsHoldEveryRoundUnderContinuousChurn) {
  const auto scn = corridor_scenario(500, 77);
  sim::DynamicTopology topo(scn.graph);
  const int rounds = 60;
  const sim::ChurnScript script = sim::ChurnScript::random(
      scn.graph, churn_spec(scn.range, rounds, 0.35), 1234);
  ASSERT_FALSE(script.empty());

  SkeletonMaintainer maint(topo, regional_options());
  maint.initialize();
  for (int round = 0; round < rounds; ++round) {
    const RepairOutcome out = maint.advance(script, round);
    ASSERT_TRUE(out.invariants_ok) << "round " << round;
    const auto rep = maint.check();
    ASSERT_TRUE(rep.ok()) << "round " << round << ": "
                          << rep.violations.front();
    if (round % 15 == 14) {
      // Periodic ground-truth checkpoint: flush pending dirt, then the
      // cached stage-1/2 state must equal the canonical one.
      (void)maint.repair_now();
      expect_stage12_matches_canonical(maint, maint.canonical());
    }
  }
  EXPECT_EQ(maint.stats().invariant_failures, 0);
  EXPECT_GT(maint.stats().repairs_total(), 0);
  // At this churn rate most repairs must stay sub-global — the point of
  // incremental maintenance.
  EXPECT_GT(maint.stats().repairs_local + maint.stats().repairs_regional, 0);
}

}  // namespace
}  // namespace skelex
