#include "geometry/medial_axis_ref.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/shapes.h"

namespace skelex::geom {
namespace {

TEST(ReferenceMedialAxis, RectAxisIsTheMidline) {
  // A long rectangle's stable medial axis is the horizontal midline
  // (plus 45-degree corner spurs, which the lambda filter suppresses for
  // large-enough min_separation).
  const Region rect = shapes::corridor(100.0, 20.0);
  MedialAxisParams p;
  p.min_separation = 15.0;  // > corridor width: keeps only the midline
  const ReferenceMedialAxis axis(rect, p);
  ASSERT_FALSE(axis.empty());
  for (const MedialSample& s : axis.samples()) {
    EXPECT_NEAR(s.pos.y, 10.0, 1.2) << s.pos;
    EXPECT_NEAR(s.clearance, 10.0, 1.2);
  }
}

TEST(ReferenceMedialAxis, DiskAxisDegeneratesToCenter) {
  // A disk's exact medial axis is a single point; the tolerance-based
  // touch-point collection necessarily blurs that degeneracy into a small
  // central blob (near the center, every direction is almost-nearest).
  // The blob must stay well inside the disk (radius 30).
  const Region disk = shapes::disk(30.0);
  MedialAxisParams p;
  p.min_separation = 25.0;
  const ReferenceMedialAxis axis(disk, p);
  ASSERT_FALSE(axis.empty());
  EXPECT_LT(axis.distance_to_axis({50, 50}), 1.5);  // center is medial
  for (const MedialSample& s : axis.samples()) {
    EXPECT_NEAR(dist(s.pos, {50, 50}), 0.0, 11.0);
  }
}

TEST(ReferenceMedialAxis, AnnulusAxisIsTheMiddleCircle) {
  const Region ann = shapes::annulus(40.0, 20.0);
  const ReferenceMedialAxis axis(ann);
  ASSERT_FALSE(axis.empty());
  // Middle radius = 30.
  for (const MedialSample& s : axis.samples()) {
    EXPECT_NEAR(dist(s.pos, {50, 50}), 30.0, 2.5);
  }
  // The axis goes all the way around: samples in all four quadrants.
  int q[4] = {0, 0, 0, 0};
  for (const MedialSample& s : axis.samples()) {
    const int ix = s.pos.x > 50 ? 1 : 0;
    const int iy = s.pos.y > 50 ? 1 : 0;
    ++q[2 * iy + ix];
  }
  for (int count : q) EXPECT_GT(count, 0);
}

TEST(ReferenceMedialAxis, DistanceQueryMatchesBruteForce) {
  const Region l = shapes::lshape();
  const ReferenceMedialAxis axis(l);
  ASSERT_FALSE(axis.empty());
  const Vec2 queries[] = {{15, 15}, {50, 15}, {15, 80}, {90, 10}, {2, 2}};
  for (const Vec2& p : queries) {
    double brute = 1e18;
    for (const MedialSample& s : axis.samples()) {
      brute = std::min(brute, dist(p, s.pos));
    }
    EXPECT_NEAR(axis.distance_to_axis(p), brute, 1e-9) << p;
  }
}

TEST(ReferenceMedialAxis, CoverageBounds) {
  const Region rect = shapes::corridor(100.0, 20.0);
  MedialAxisParams p;
  p.min_separation = 15.0;
  const ReferenceMedialAxis axis(rect, p);
  // Points on the midline cover everything within a big radius.
  std::vector<Vec2> mid;
  for (double x = 2; x <= 98; x += 2) mid.push_back({x, 10});
  EXPECT_GT(axis.coverage(mid, 3.0), 0.95);
  EXPECT_DOUBLE_EQ(axis.coverage(mid, 200.0), 1.0);
  // A single far corner point covers almost nothing at small radius.
  EXPECT_LT(axis.coverage({{0, 0}}, 3.0), 0.1);
  EXPECT_EQ(axis.coverage({}, 3.0), 0.0);
}

TEST(ReferenceMedialAxis, MinClearanceFiltersBoundaryNoise) {
  const Region rect = shapes::corridor(60.0, 12.0);
  MedialAxisParams p;
  p.min_clearance = 3.0;
  const ReferenceMedialAxis axis(rect, p);
  for (const MedialSample& s : axis.samples()) {
    EXPECT_GE(s.clearance, 3.0);
  }
}

TEST(ReferenceMedialAxis, WindowAxisTouchesAllCorridors) {
  const Region w = shapes::window();
  const ReferenceMedialAxis axis(w);
  ASSERT_FALSE(axis.empty());
  // The lattice midlines: check a few expected medial locations.
  EXPECT_LT(axis.distance_to_axis({50, 50}), 2.5);  // central junction
  EXPECT_LT(axis.distance_to_axis({7, 50}), 2.5);   // left frame bar
  EXPECT_LT(axis.distance_to_axis({50, 7}), 2.5);   // bottom frame bar
  // Pane centers are NOT medial (outside the region entirely).
  EXPECT_GT(axis.distance_to_axis({29, 29}), 10.0);
}

}  // namespace
}  // namespace skelex::geom
