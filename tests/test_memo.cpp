// The memo-cache contract: a memoized extraction is bit-identical to an
// unmemoized one, warm requests share the producing request's stage
// values (no copies), the trace replay matches cold numbers exactly
// (modulo wall time), and the cache's LRU/budget/stats mechanics behave.
#include "core/memo/stage_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fingerprint.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

namespace skelex::core {
namespace {

net::Graph window_graph(int nodes = 700, std::uint64_t seed = 5) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 7.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::window(), spec).graph;
}

TEST(Memo, MemoizedEqualsUnmemoizedBitIdentical) {
  const net::Graph g = window_graph();
  const SkeletonResult plain = extract_skeleton(g, Params{});

  memo::StageCache cache;
  const SkeletonResult cold = extract_skeleton(g, Params{}, &cache);
  const SkeletonResult warm = extract_skeleton(g, Params{}, &cache);

  const std::uint64_t fp = result_fingerprint(plain);
  EXPECT_EQ(result_fingerprint(cold), fp);
  EXPECT_EQ(result_fingerprint(warm), fp);

  const memo::CacheStats st = cache.stats();
  EXPECT_GT(st.hits, 0) << "warm run should have hit cached stages";
  EXPECT_GT(st.insertions, 0);
}

TEST(Memo, WarmRunSharesStageValuesWithCold) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  const SkeletonResult cold = extract_skeleton(g, Params{}, &cache);
  const SkeletonResult warm = extract_skeleton(g, Params{}, &cache);

  // Not equal copies — the SAME shared immutable values.
  EXPECT_EQ(cold.index_out.get(), warm.index_out.get());
  EXPECT_EQ(cold.voronoi_out.get(), warm.voronoi_out.get());
  EXPECT_EQ(cold.coarse_out.get(), warm.coarse_out.get());
}

TEST(Memo, RequestsDifferingOnlyInPruneShareStages13) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  Params a;
  Params b;
  b.prune_len = 11;  // stage-4 param only
  const SkeletonResult ra = extract_skeleton(g, a, &cache);
  const SkeletonResult rb = extract_skeleton(g, b, &cache);

  EXPECT_EQ(ra.index_out.get(), rb.index_out.get());
  EXPECT_EQ(ra.voronoi_out.get(), rb.voronoi_out.get());
  EXPECT_EQ(ra.coarse_out.get(), rb.coarse_out.get());

  // And each equals its own unmemoized run.
  EXPECT_EQ(result_fingerprint(ra), result_fingerprint(extract_skeleton(g, a)));
  EXPECT_EQ(result_fingerprint(rb), result_fingerprint(extract_skeleton(g, b)));
}

TEST(Memo, StageParamChangeInvalidatesDownstreamOnly) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  Params a;
  Params b;
  b.local_max_radius = 3;  // identify param: index may be shared, rest not
  const SkeletonResult ra = extract_skeleton(g, a, &cache);
  const SkeletonResult rb = extract_skeleton(g, b, &cache);

  EXPECT_EQ(ra.index_out.get(), rb.index_out.get());
  EXPECT_EQ(result_fingerprint(rb), result_fingerprint(extract_skeleton(g, b)));
}

TEST(Memo, WarmTraceMatchesColdModuloMillis) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  const SkeletonResult cold = extract_skeleton(g, Params{}, &cache);
  const SkeletonResult warm = extract_skeleton(g, Params{}, &cache);

  ASSERT_EQ(cold.trace.stages.size(), warm.trace.stages.size());
  for (std::size_t i = 0; i < cold.trace.stages.size(); ++i) {
    const StageTrace::Stage& c = cold.trace.stages[i];
    const StageTrace::Stage& w = warm.trace.stages[i];
    EXPECT_EQ(c.name, w.name);
    EXPECT_EQ(c.nodes, w.nodes) << c.name;
    EXPECT_EQ(c.messages, w.messages) << c.name;
  }
}

TEST(Memo, DifferentGraphsDoNotCollide) {
  const net::Graph g1 = window_graph(700, 5);
  const net::Graph g2 = window_graph(700, 6);  // same spec, different seed
  memo::StageCache cache;
  const SkeletonResult r1 = extract_skeleton(g1, Params{}, &cache);
  const SkeletonResult r2 = extract_skeleton(g2, Params{}, &cache);
  EXPECT_NE(r1.index_out.get(), r2.index_out.get());
  EXPECT_EQ(result_fingerprint(r2), result_fingerprint(extract_skeleton(g2)));
}

// --- StageCache mechanics (no pipeline involved) -----------------------------

TEST(StageCache, FindMissThenInsertThenHit) {
  memo::StageCache cache;
  EXPECT_EQ(cache.find<int>(42, "t"), nullptr);
  auto in = std::make_shared<const int>(7);
  auto kept = cache.insert<int>(42, "t", in, 100);
  EXPECT_EQ(kept.get(), in.get());
  memo::StageCache::TraceFacts facts;
  auto hit = cache.find<int>(42, "t", &facts);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);

  const memo::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.insertions, 1);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, 100u);
}

TEST(StageCache, FirstWriterWinsOnDuplicateInsert) {
  memo::StageCache cache;
  auto first = std::make_shared<const int>(1);
  auto second = std::make_shared<const int>(1);  // equal by determinism
  cache.insert<int>(9, "t", first, 10);
  auto kept = cache.insert<int>(9, "t", second, 10);
  EXPECT_EQ(kept.get(), first.get());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(StageCache, EvictsLeastRecentlyUsedByEntryBudget) {
  memo::StageCache::Options opt;
  opt.max_entries = 2;
  memo::StageCache cache(opt);
  cache.insert<int>(1, "t", std::make_shared<const int>(1), 8);
  cache.insert<int>(2, "t", std::make_shared<const int>(2), 8);
  ASSERT_NE(cache.find<int>(1, "t"), nullptr);  // refresh 1: now 2 is LRU
  cache.insert<int>(3, "t", std::make_shared<const int>(3), 8);

  EXPECT_NE(cache.find<int>(1, "t"), nullptr);
  EXPECT_EQ(cache.find<int>(2, "t"), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(cache.find<int>(3, "t"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(StageCache, EvictsByByteBudget) {
  memo::StageCache::Options opt;
  opt.max_bytes = 100;
  memo::StageCache cache(opt);
  cache.insert<int>(1, "t", std::make_shared<const int>(1), 60);
  cache.insert<int>(2, "t", std::make_shared<const int>(2), 60);
  EXPECT_EQ(cache.find<int>(1, "t"), nullptr);
  EXPECT_NE(cache.find<int>(2, "t"), nullptr);
  EXPECT_LE(cache.stats().bytes, 100u);
}

TEST(StageCache, OversizedValueReturnedButNotRetained) {
  memo::StageCache::Options opt;
  opt.max_bytes = 100;
  memo::StageCache cache(opt);
  auto big = std::make_shared<const int>(5);
  auto kept = cache.insert<int>(7, "t", big, 1000);
  EXPECT_EQ(kept.get(), big.get());  // caller still gets its value
  EXPECT_EQ(cache.find<int>(7, "t"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(StageCache, TraceFactsRoundTrip) {
  memo::StageCache cache;
  memo::StageCache::TraceFacts in{123, 456789};
  cache.insert<int>(5, "t", std::make_shared<const int>(0), 4, in);
  memo::StageCache::TraceFacts out;
  ASSERT_NE(cache.find<int>(5, "t", &out), nullptr);
  EXPECT_EQ(out.nodes, 123);
  EXPECT_EQ(out.messages, 456789);
}

TEST(StageCache, ClearEmptiesEverything) {
  memo::StageCache cache;
  cache.insert<int>(1, "t", std::make_shared<const int>(1), 8);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.find<int>(1, "t"), nullptr);
}

TEST(StageCache, GraphFingerprintDistinguishesLiveContent) {
  const net::Graph g1 = window_graph(500, 1);
  const net::Graph g2 = window_graph(500, 2);
  EXPECT_NE(graph_fingerprint(g1.csr()), graph_fingerprint(g2.csr()));
  EXPECT_EQ(graph_fingerprint(g1.csr()), graph_fingerprint(net::CsrGraph(g1)));
}

}  // namespace
}  // namespace skelex::core
