// The memo-cache contract: a memoized extraction is bit-identical to an
// unmemoized one, warm requests share the producing request's stage
// values (no copies), the trace replay matches cold numbers exactly
// (modulo wall time), and the cache's LRU/budget/stats mechanics behave.
#include "core/memo/stage_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fingerprint.h"
#include "core/pipeline.h"
#include "core/stage_cmd.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

namespace skelex::core {
namespace {

net::Graph window_graph(int nodes = 700, std::uint64_t seed = 5) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 7.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::window(), spec).graph;
}

TEST(Memo, MemoizedEqualsUnmemoizedBitIdentical) {
  const net::Graph g = window_graph();
  const SkeletonResult plain = extract_skeleton(g, Params{});

  memo::StageCache cache;
  const SkeletonResult cold = extract_skeleton(g, Params{}, &cache);
  const SkeletonResult warm = extract_skeleton(g, Params{}, &cache);

  const std::uint64_t fp = result_fingerprint(plain);
  EXPECT_EQ(result_fingerprint(cold), fp);
  EXPECT_EQ(result_fingerprint(warm), fp);

  const memo::CacheStats st = cache.stats();
  EXPECT_GT(st.hits, 0) << "warm run should have hit cached stages";
  EXPECT_GT(st.insertions, 0);
}

TEST(Memo, WarmRunSharesStageValuesWithCold) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  const SkeletonResult cold = extract_skeleton(g, Params{}, &cache);
  const SkeletonResult warm = extract_skeleton(g, Params{}, &cache);

  // Not equal copies — the SAME shared immutable values.
  EXPECT_EQ(cold.index_out.get(), warm.index_out.get());
  EXPECT_EQ(cold.voronoi_out.get(), warm.voronoi_out.get());
  EXPECT_EQ(cold.coarse_out.get(), warm.coarse_out.get());
}

TEST(Memo, RequestsDifferingOnlyInPruneShareStages13) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  Params a;
  Params b;
  b.prune_len = 11;  // stage-4 param only
  const SkeletonResult ra = extract_skeleton(g, a, &cache);
  const SkeletonResult rb = extract_skeleton(g, b, &cache);

  EXPECT_EQ(ra.index_out.get(), rb.index_out.get());
  EXPECT_EQ(ra.voronoi_out.get(), rb.voronoi_out.get());
  EXPECT_EQ(ra.coarse_out.get(), rb.coarse_out.get());

  // And each equals its own unmemoized run.
  EXPECT_EQ(result_fingerprint(ra), result_fingerprint(extract_skeleton(g, a)));
  EXPECT_EQ(result_fingerprint(rb), result_fingerprint(extract_skeleton(g, b)));
}

TEST(Memo, StageParamChangeInvalidatesDownstreamOnly) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  Params a;
  Params b;
  b.local_max_radius = 3;  // identify param: index may be shared, rest not
  const SkeletonResult ra = extract_skeleton(g, a, &cache);
  const SkeletonResult rb = extract_skeleton(g, b, &cache);

  EXPECT_EQ(ra.index_out.get(), rb.index_out.get());
  EXPECT_EQ(result_fingerprint(rb), result_fingerprint(extract_skeleton(g, b)));
}

TEST(Memo, WarmTraceMatchesColdModuloMillis) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  const SkeletonResult cold = extract_skeleton(g, Params{}, &cache);
  const SkeletonResult warm = extract_skeleton(g, Params{}, &cache);

  ASSERT_EQ(cold.trace.stages.size(), warm.trace.stages.size());
  for (std::size_t i = 0; i < cold.trace.stages.size(); ++i) {
    const StageTrace::Stage& c = cold.trace.stages[i];
    const StageTrace::Stage& w = warm.trace.stages[i];
    EXPECT_EQ(c.name, w.name);
    EXPECT_EQ(c.nodes, w.nodes) << c.name;
    EXPECT_EQ(c.messages, w.messages) << c.name;
  }
}

TEST(Memo, DifferentGraphsDoNotCollide) {
  const net::Graph g1 = window_graph(700, 5);
  const net::Graph g2 = window_graph(700, 6);  // same spec, different seed
  memo::StageCache cache;
  const SkeletonResult r1 = extract_skeleton(g1, Params{}, &cache);
  const SkeletonResult r2 = extract_skeleton(g2, Params{}, &cache);
  EXPECT_NE(r1.index_out.get(), r2.index_out.get());
  EXPECT_EQ(result_fingerprint(r2), result_fingerprint(extract_skeleton(g2)));
}

// --- Tail-stage memoization (assess/cleanup/prune/byproducts) ----------------

TEST(Memo, PruneVariantHitsEveryStageThroughCleanup) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  Params a;
  const SkeletonResult ra = extract_skeleton(g, a, &cache);
  const memo::CacheStats cold = cache.stats();

  Params b;
  b.prune_len = 11;  // stage-4b param only
  const SkeletonResult rb = extract_skeleton(g, b, &cache);
  const memo::CacheStats warm = cache.stats();

  // The full DAG is 8 keyed stages (index, identify, voronoi, assess,
  // coarse, cleanup, prune, byproducts). A prune-only variant must
  // replay the first six and recompute exactly prune + byproducts.
  EXPECT_EQ(cold.misses, 8);
  EXPECT_EQ(cold.insertions, 8);
  EXPECT_EQ(warm.hits - cold.hits, 6);
  EXPECT_EQ(warm.misses - cold.misses, 2);
  EXPECT_EQ(warm.insertions - cold.insertions, 2);

  // And both results equal their unmemoized runs bit for bit.
  EXPECT_EQ(result_fingerprint(ra), result_fingerprint(extract_skeleton(g, a)));
  EXPECT_EQ(result_fingerprint(rb), result_fingerprint(extract_skeleton(g, b)));
}

TEST(Memo, FullyWarmRunHitsAllEightStages) {
  const net::Graph g = window_graph();
  memo::StageCache cache;
  const SkeletonResult cold = extract_skeleton(g, Params{}, &cache);
  const memo::CacheStats st0 = cache.stats();
  const SkeletonResult warm = extract_skeleton(g, Params{}, &cache);
  const memo::CacheStats st1 = cache.stats();

  EXPECT_EQ(st1.hits - st0.hits, 8);
  EXPECT_EQ(st1.misses, st0.misses);

  // The replayed tail stages (cleanup, prune, byproducts included) carry
  // the cold run's node/message counts in the trace.
  ASSERT_EQ(cold.trace.stages.size(), warm.trace.stages.size());
  bool saw_cleanup = false, saw_prune = false, saw_byproducts = false;
  for (std::size_t i = 0; i < cold.trace.stages.size(); ++i) {
    const StageTrace::Stage& c = cold.trace.stages[i];
    const StageTrace::Stage& w = warm.trace.stages[i];
    EXPECT_EQ(c.name, w.name);
    EXPECT_EQ(c.nodes, w.nodes) << c.name;
    EXPECT_EQ(c.messages, w.messages) << c.name;
    saw_cleanup |= c.name == "cleanup";
    saw_prune |= c.name == "prune";
    saw_byproducts |= c.name == "byproducts";
  }
  EXPECT_TRUE(saw_cleanup && saw_prune && saw_byproducts);

  // Warm tail outputs are not recomputed copies: the final skeleton and
  // by-products equal the cold ones exactly.
  EXPECT_EQ(result_fingerprint(cold), result_fingerprint(warm));
}

// The key-chaining contract, on the commands themselves: upstream
// changes propagate to every downstream key, parameter changes start
// invalidation exactly at their stage.
struct TailKeys {
  std::uint64_t assess, coarse, cleanup, prune, byproducts;
};

TailKeys tail_keys(std::uint64_t voronoi_key, const Params& p) {
  TailKeys k{};
  AssessCmd assess;
  assess.voronoi_key = voronoi_key;
  assess.params = p.voronoi_params();
  k.assess = assess.key();
  CoarseCmd coarse;
  coarse.voronoi_key = voronoi_key;  // effective key, unpatched input
  coarse.params = p.coarse_params();
  k.coarse = coarse.key();
  CleanupCmd cleanup;
  cleanup.coarse_key = k.coarse;
  cleanup.params = p.cleanup_params();
  k.cleanup = cleanup.key();
  PruneCmd prune;
  prune.cleanup_key = k.cleanup;
  prune.params = p.prune_params();
  k.prune = prune.key();
  ByproductsCmd byp;
  byp.prune_key = k.prune;
  k.byproducts = byp.key();
  return k;
}

TEST(Memo, KeyChainUpstreamChangePropagatesToEveryTailKey) {
  const Params p;
  const TailKeys k1 = tail_keys(0x1111, p);
  const TailKeys k2 = tail_keys(0x2222, p);  // e.g. a regional re-flood
  EXPECT_NE(k1.assess, k2.assess);
  EXPECT_NE(k1.coarse, k2.coarse);
  EXPECT_NE(k1.cleanup, k2.cleanup);
  EXPECT_NE(k1.prune, k2.prune);
  EXPECT_NE(k1.byproducts, k2.byproducts);
}

TEST(Memo, KeyChainPruneParamChangesExactlyTheDownstreamSuffix) {
  Params a;
  Params b;
  b.prune_len = 11;
  const TailKeys ka = tail_keys(0x1234, a);
  const TailKeys kb = tail_keys(0x1234, b);
  EXPECT_EQ(ka.assess, kb.assess);
  EXPECT_EQ(ka.coarse, kb.coarse);
  EXPECT_EQ(ka.cleanup, kb.cleanup);
  EXPECT_NE(ka.prune, kb.prune);
  EXPECT_NE(ka.byproducts, kb.byproducts);
}

TEST(Memo, KeyChainCleanupParamChangesCleanupOnward) {
  Params a;
  Params b;
  b.thin_cycle_hops = 3;
  const TailKeys ka = tail_keys(0x1234, a);
  const TailKeys kb = tail_keys(0x1234, b);
  EXPECT_EQ(ka.assess, kb.assess);
  EXPECT_EQ(ka.coarse, kb.coarse);
  EXPECT_NE(ka.cleanup, kb.cleanup);
  EXPECT_NE(ka.prune, kb.prune);
  EXPECT_NE(ka.byproducts, kb.byproducts);
}

TEST(Memo, TinyCacheEvictionNeverCorruptsResults) {
  // Cache entries are standalone immutable values: evicting an upstream
  // stage while a downstream entry survives (any LRU order) must never
  // change what a request computes.
  const net::Graph g = window_graph();
  const std::uint64_t want = result_fingerprint(extract_skeleton(g, Params{}));
  memo::StageCache::Options opt;
  opt.max_entries = 3;  // forces upstream evictions mid-pipeline
  memo::StageCache cache(opt);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(result_fingerprint(extract_skeleton(g, Params{}, &cache)), want)
        << "run " << i;
  }
  EXPECT_GT(cache.stats().evictions, 0) << "cache too big for the test";
}

TEST(Memo, Stage12FingerprintTracksContent) {
  const net::Graph g = window_graph(500, 3);
  const SkeletonResult r = extract_skeleton(g, Params{});
  const std::uint64_t base =
      stage12_fingerprint(g.csr(), r.index(), r.critical_nodes, r.voronoi());
  EXPECT_EQ(base, stage12_fingerprint(g.csr(), r.index(), r.critical_nodes,
                                      r.voronoi()));

  std::vector<int> crit2 = r.critical_nodes;
  crit2.push_back(0);
  EXPECT_NE(base,
            stage12_fingerprint(g.csr(), r.index(), crit2, r.voronoi()));

  VoronoiResult vor2 = r.voronoi();
  ASSERT_FALSE(vor2.dist.empty());
  vor2.dist[0] += 1;
  EXPECT_NE(base,
            stage12_fingerprint(g.csr(), r.index(), r.critical_nodes, vor2));
}

// --- StageCache mechanics (no pipeline involved) -----------------------------

TEST(StageCache, FindMissThenInsertThenHit) {
  memo::StageCache cache;
  EXPECT_EQ(cache.find<int>(42, "t"), nullptr);
  auto in = std::make_shared<const int>(7);
  auto kept = cache.insert<int>(42, "t", in, 100);
  EXPECT_EQ(kept.get(), in.get());
  memo::StageCache::TraceFacts facts;
  auto hit = cache.find<int>(42, "t", &facts);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 7);

  const memo::CacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.insertions, 1);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, 100u);
}

TEST(StageCache, FirstWriterWinsOnDuplicateInsert) {
  memo::StageCache cache;
  auto first = std::make_shared<const int>(1);
  auto second = std::make_shared<const int>(1);  // equal by determinism
  cache.insert<int>(9, "t", first, 10);
  auto kept = cache.insert<int>(9, "t", second, 10);
  EXPECT_EQ(kept.get(), first.get());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(StageCache, EvictsLeastRecentlyUsedByEntryBudget) {
  memo::StageCache::Options opt;
  opt.max_entries = 2;
  memo::StageCache cache(opt);
  cache.insert<int>(1, "t", std::make_shared<const int>(1), 8);
  cache.insert<int>(2, "t", std::make_shared<const int>(2), 8);
  ASSERT_NE(cache.find<int>(1, "t"), nullptr);  // refresh 1: now 2 is LRU
  cache.insert<int>(3, "t", std::make_shared<const int>(3), 8);

  EXPECT_NE(cache.find<int>(1, "t"), nullptr);
  EXPECT_EQ(cache.find<int>(2, "t"), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(cache.find<int>(3, "t"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(StageCache, EvictsByByteBudget) {
  memo::StageCache::Options opt;
  opt.max_bytes = 100;
  memo::StageCache cache(opt);
  cache.insert<int>(1, "t", std::make_shared<const int>(1), 60);
  cache.insert<int>(2, "t", std::make_shared<const int>(2), 60);
  EXPECT_EQ(cache.find<int>(1, "t"), nullptr);
  EXPECT_NE(cache.find<int>(2, "t"), nullptr);
  EXPECT_LE(cache.stats().bytes, 100u);
}

TEST(StageCache, OversizedValueReturnedButNotRetained) {
  memo::StageCache::Options opt;
  opt.max_bytes = 100;
  memo::StageCache cache(opt);
  auto big = std::make_shared<const int>(5);
  auto kept = cache.insert<int>(7, "t", big, 1000);
  EXPECT_EQ(kept.get(), big.get());  // caller still gets its value
  EXPECT_EQ(cache.find<int>(7, "t"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(StageCache, TraceFactsRoundTrip) {
  memo::StageCache cache;
  memo::StageCache::TraceFacts in{123, 456789};
  cache.insert<int>(5, "t", std::make_shared<const int>(0), 4, in);
  memo::StageCache::TraceFacts out;
  ASSERT_NE(cache.find<int>(5, "t", &out), nullptr);
  EXPECT_EQ(out.nodes, 123);
  EXPECT_EQ(out.messages, 456789);
}

TEST(StageCache, ClearEmptiesEverything) {
  memo::StageCache cache;
  cache.insert<int>(1, "t", std::make_shared<const int>(1), 8);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.find<int>(1, "t"), nullptr);
}

TEST(StageCache, GraphFingerprintDistinguishesLiveContent) {
  const net::Graph g1 = window_graph(500, 1);
  const net::Graph g2 = window_graph(500, 2);
  EXPECT_NE(graph_fingerprint(g1.csr()), graph_fingerprint(g2.csr()));
  EXPECT_EQ(graph_fingerprint(g1.csr()), graph_fingerprint(net::CsrGraph(g1)));
}

}  // namespace
}  // namespace skelex::core
