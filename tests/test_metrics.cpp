#include "metrics/homotopy.h"
#include "metrics/quality.h"
#include "metrics/stability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/shapes.h"

namespace skelex::metrics {
namespace {

using geom::Vec2;

net::Graph three_positions() {
  return net::Graph(std::vector<Vec2>{{50, 10}, {50, 30}, {50, 50}});
}

TEST(Medialness, ExactDistances) {
  const geom::Region region = geom::shapes::corridor(100.0, 20.0);
  geom::MedialAxisParams p;
  p.min_separation = 15.0;  // midline only
  const geom::ReferenceMedialAxis axis(region, p);

  net::Graph g(std::vector<Vec2>{{50, 10}, {50, 14}, {20, 10}});
  core::SkeletonGraph sk(3);
  sk.add_node(0);
  sk.add_node(1);
  const Medialness m = medialness(g, sk, axis);
  EXPECT_EQ(m.node_count, 2);
  EXPECT_NEAR(m.mean, (0.0 + 4.0) / 2.0, 0.8);
  EXPECT_NEAR(m.max, 4.0, 0.8);
  EXPECT_GE(m.rms, m.mean);
  EXPECT_LE(m.rms, m.max + 1e-9);
}

TEST(Medialness, EmptySkeleton) {
  const geom::ReferenceMedialAxis axis(geom::shapes::corridor(60, 12));
  net::Graph g(std::vector<Vec2>{{10, 6}});
  core::SkeletonGraph sk(1);
  const Medialness m = medialness(g, sk, axis);
  EXPECT_EQ(m.node_count, 0);
  EXPECT_EQ(m.mean, 0.0);
}

TEST(SkeletonPositions, RequiresPositions) {
  net::Graph g(3);
  core::SkeletonGraph sk(3);
  sk.add_node(0);
  EXPECT_THROW(skeleton_positions(g, sk), std::invalid_argument);
}

TEST(AxisCoverage, MidlineCoversCorridorAxis) {
  const geom::Region region = geom::shapes::corridor(100.0, 20.0);
  geom::MedialAxisParams p;
  p.min_separation = 15.0;
  const geom::ReferenceMedialAxis axis(region, p);
  std::vector<Vec2> pos;
  for (double x = 2; x <= 98; x += 1.5) pos.push_back({x, 10});
  net::Graph g(pos);
  core::SkeletonGraph sk(g.n());
  for (int v = 0; v < g.n(); ++v) sk.add_node(v);
  EXPECT_GT(axis_coverage(g, sk, axis, 2.5), 0.95);
  // One lone node covers only its neighborhood.
  core::SkeletonGraph one(g.n());
  one.add_node(0);
  EXPECT_LT(axis_coverage(g, one, axis, 2.5), 0.2);
}

TEST(Homotopy, MatchingAndMismatching) {
  const geom::Region ann = geom::shapes::annulus();
  net::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  core::SkeletonGraph ring(4);
  ring.add_edge(0, 1);
  ring.add_edge(1, 2);
  ring.add_edge(2, 3);
  ring.add_edge(3, 0);
  const HomotopyCheck ok = check_homotopy(g, ring, ann);
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.skeleton_cycles, 1);
  EXPECT_EQ(ok.region_holes, 1);

  core::SkeletonGraph path(4);
  path.add_edge(0, 1);
  const HomotopyCheck bad = check_homotopy(g, path, ann);
  EXPECT_FALSE(bad.ok);
  EXPECT_TRUE(bad.components_match);
  EXPECT_FALSE(bad.cycles_match);
}

TEST(PositionSetDistance, KnownSets) {
  const std::vector<Vec2> a{{0, 0}, {10, 0}};
  const std::vector<Vec2> b{{0, 1}, {10, 0}, {20, 0}};
  const PositionSetDistance d = position_set_distance(a, b);
  // Directed a->b: max 1 (from (0,0)); b->a: max 10 (from (20,0)).
  EXPECT_DOUBLE_EQ(d.hausdorff, 10.0);
  // mean a->b = (1+0)/2; mean b->a = (1+0+10)/3.
  EXPECT_NEAR(d.mean_nearest, 0.5 * (0.5 + 11.0 / 3.0), 1e-9);
}

TEST(PositionSetDistance, IdenticalSetsAreZero) {
  const std::vector<Vec2> a{{1, 2}, {3, 4}};
  const PositionSetDistance d = position_set_distance(a, a);
  EXPECT_DOUBLE_EQ(d.hausdorff, 0.0);
  EXPECT_DOUBLE_EQ(d.mean_nearest, 0.0);
}

TEST(PositionSetDistance, RejectsEmpty) {
  EXPECT_THROW(position_set_distance({}, {{1, 1}}), std::invalid_argument);
  EXPECT_THROW(position_set_distance({{1, 1}}, {}), std::invalid_argument);
}

TEST(SkeletonDistance, AcrossGraphs) {
  net::Graph ga = three_positions();
  net::Graph gb(std::vector<Vec2>{{50, 11}, {50, 29}});
  core::SkeletonGraph ska(3);
  ska.add_node(0);
  ska.add_node(1);
  core::SkeletonGraph skb(2);
  skb.add_node(0);
  skb.add_node(1);
  const PositionSetDistance d = skeleton_distance(ga, ska, gb, skb);
  EXPECT_DOUBLE_EQ(d.hausdorff, 1.0);
}

}  // namespace
}  // namespace skelex::metrics
