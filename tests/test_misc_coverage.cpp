// Coverage for smaller public surfaces: path_to_nearby records,
// cluster_within_hops as a property against brute force, boundary filter
// validation, and scenario spec handling.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/byproducts.h"
#include "core/identify.h"
#include "core/index.h"
#include "core/coarse.h"
#include "core/voronoi.h"
#include "deploy/rng.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"

namespace skelex {
namespace {

TEST(PathToNearby, OwnAndOtherSiteRecords) {
  // Path 0-1-2-3-4-5-6, sites {0, 6}.
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  const core::VoronoiResult vor = core::build_voronoi(g, {0, 6}, core::Params{});
  // Node 3 (tie): two records.
  const auto& nearby = vor.nearby[3];
  ASSERT_EQ(nearby.size(), 2u);
  EXPECT_EQ(nearby[0].site, 0);
  EXPECT_EQ(nearby[1].site, 1);
  const auto p0 = vor.path_to_nearby(3, nearby[0]);
  EXPECT_EQ(p0, (std::vector<int>{3, 2, 1, 0}));
  const auto p1 = vor.path_to_nearby(3, nearby[1]);
  EXPECT_EQ(p1, (std::vector<int>{3, 4, 5, 6}));
  // The site itself: single-element path.
  ASSERT_EQ(vor.nearby[0].size(), 1u);
  EXPECT_EQ(vor.path_to_nearby(0, vor.nearby[0][0]), (std::vector<int>{0}));
}

TEST(PathToNearby, RecordDistsMatchPathLengths) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 600;
  spec.target_avg_deg = 8.0;
  spec.seed = 31;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::lshape(), spec);
  const core::Params p;
  const core::IndexData idx = core::compute_index(sc.graph, p);
  const auto crit = core::identify_critical_nodes(sc.graph, idx, p);
  const core::VoronoiResult vor = core::build_voronoi(sc.graph, crit, p);
  for (int v = 0; v < sc.graph.n(); ++v) {
    for (const auto& rec : vor.nearby[static_cast<std::size_t>(v)]) {
      const auto path = vor.path_to_nearby(v, rec);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(static_cast<int>(path.size()) - 1, rec.dist)
          << "node " << v << " site " << rec.site;
      EXPECT_EQ(path.back(), vor.sites[static_cast<std::size_t>(rec.site)]);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        EXPECT_TRUE(sc.graph.has_edge(path[i], path[i + 1]));
      }
    }
  }
}

// Property: cluster_within_hops computes the transitive closure of
// "within h hops in G" over the node set.
class ClusterPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(ClusterPropertyTest, MatchesBruteForceClosure) {
  const auto [set_size, merge_hops, seed] = GetParam();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 400;
  spec.target_avg_deg = 7.0;
  spec.seed = seed;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::rect(60, 60), spec);
  const net::Graph& g = sc.graph;

  deploy::Rng rng(seed ^ 0x77);
  std::set<int> chosen;
  while (static_cast<int>(chosen.size()) < set_size) {
    chosen.insert(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(g.n()))));
  }
  const std::vector<int> nodes(chosen.begin(), chosen.end());

  // Brute force: union-find over pairs with hop distance <= merge_hops.
  std::vector<int> uf(nodes.size());
  for (std::size_t i = 0; i < uf.size(); ++i) uf[i] = static_cast<int>(i);
  const auto find = [&](int x) {
    while (uf[static_cast<std::size_t>(x)] != x) x = uf[static_cast<std::size_t>(x)];
    return x;
  };
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const auto d = net::bfs_distances(g, nodes[i], merge_hops);
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (d[static_cast<std::size_t>(nodes[j])] != net::kUnreached) {
        uf[static_cast<std::size_t>(find(static_cast<int>(i)))] =
            find(static_cast<int>(j));
      }
    }
  }
  std::map<int, std::set<int>> expected;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    expected[find(static_cast<int>(i))].insert(nodes[i]);
  }

  std::set<std::set<int>> expected_sets;
  for (const auto& [root, members] : expected) expected_sets.insert(members);
  std::set<std::set<int>> got_sets;
  for (const auto& cluster : core::cluster_within_hops(g, nodes, merge_hops)) {
    got_sets.insert(std::set<int>(cluster.begin(), cluster.end()));
  }
  EXPECT_EQ(got_sets, expected_sets);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterPropertyTest,
    ::testing::Combine(::testing::Values(3, 10, 40),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(5u, 6u)));

TEST(ExtractBoundaries, KhopFilterValidation) {
  net::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  core::SkeletonGraph sk(3);
  sk.add_node(1);
  std::vector<int> wrong(2, 0);
  EXPECT_THROW(core::extract_boundaries(g, sk, 1, &wrong),
               std::invalid_argument);
  std::vector<int> ok(3, 5);
  EXPECT_THROW(core::extract_boundaries(g, sk, 1, &ok, 0.0),
               std::invalid_argument);
  EXPECT_THROW(core::extract_boundaries(g, sk, 1, &ok, 1.5),
               std::invalid_argument);
  EXPECT_NO_THROW(core::extract_boundaries(g, sk, 1, &ok, 1.0));
}

TEST(ExtractBoundaries, KhopFilterRemovesHighDegreeRidges) {
  // Path with a skeleton node in the middle; both ends are "boundary".
  // Give node 5 an artificially huge khop value: it must be filtered.
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  core::SkeletonGraph sk(7);
  sk.add_node(3);
  std::vector<int> khop{1, 1, 1, 9, 1, 1, 9};
  const core::BoundaryResult b =
      core::extract_boundaries(g, sk, 1, &khop, 0.5);
  EXPECT_EQ(b.boundary_nodes, (std::vector<int>{0}));  // 6 filtered out
}

TEST(Scenario, ModelsProduceConnectedLargestComponent) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 500;
  spec.target_avg_deg = 9.0;
  spec.seed = 4;
  const geom::Region region = geom::shapes::disk();
  const double range = deploy::range_for_target_degree(region, 500, 9.0);
  const radio::QuasiUnitDiskModel model(range, 0.3, 0.5);
  const deploy::Scenario sc = deploy::make_scenario(region, spec, model);
  EXPECT_EQ(net::connected_components(sc.graph).count, 1);
  EXPECT_GT(sc.deployed, 0);
  EXPECT_DOUBLE_EQ(sc.range, model.max_range());
}

}  // namespace
}  // namespace skelex
