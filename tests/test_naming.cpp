#include "core/naming.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "deploy/rng.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"

namespace skelex::core {
namespace {

SkeletonResult extract(const net::Graph& g) {
  return extract_skeleton(g, Params{});
}

TEST(SkeletonNaming, NamesMatchDistanceTransform) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 900;
  spec.target_avg_deg = 8.0;
  spec.seed = 21;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::lshape(), spec);
  const SkeletonResult r = extract(sc.graph);
  const SkeletonNaming naming(sc.graph, r);
  EXPECT_EQ(naming.anchor_count(), r.skeleton.node_count());
  for (int v = 0; v < sc.graph.n(); ++v) {
    const NodeName& nm = naming.name_of(v);
    ASSERT_NE(nm.anchor, -1);
    EXPECT_TRUE(r.skeleton.has_node(nm.anchor));
    EXPECT_EQ(nm.dist,
              r.boundary.dist_to_skeleton[static_cast<std::size_t>(v)]);
    if (r.skeleton.has_node(v)) {
      EXPECT_EQ(nm.anchor, v);
      EXPECT_EQ(nm.dist, 0);
    }
  }
}

TEST(SkeletonNaming, RoutesAreValidWalks) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1000;
  spec.target_avg_deg = 8.0;
  spec.seed = 22;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::ushape(), spec);
  const SkeletonResult r = extract(sc.graph);
  const SkeletonNaming naming(sc.graph, r);
  deploy::Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const int s = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(sc.graph.n())));
    const int t = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(sc.graph.n())));
    const std::vector<int> route = naming.route(s, t);
    ASSERT_FALSE(route.empty());
    EXPECT_EQ(route.front(), s);
    EXPECT_EQ(route.back(), t);
    for (std::size_t j = 0; j + 1 < route.size(); ++j) {
      EXPECT_TRUE(sc.graph.has_edge(route[j], route[j + 1]))
          << route[j] << "-" << route[j + 1];
    }
  }
}

TEST(SkeletonNaming, SelfRouteAndAnchorRoute) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 600;
  spec.target_avg_deg = 8.0;
  spec.seed = 23;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::rect(80, 30), spec);
  const SkeletonResult r = extract(sc.graph);
  const SkeletonNaming naming(sc.graph, r);
  const std::vector<int> self = naming.route(4, 4);
  ASSERT_GE(self.size(), 1u);
  EXPECT_EQ(self.front(), 4);
  EXPECT_EQ(self.back(), 4);
  EXPECT_THROW(naming.route(-1, 0), std::out_of_range);
  EXPECT_THROW(naming.route(0, sc.graph.n()), std::out_of_range);
}

TEST(SkeletonNaming, StretchIsModest) {
  // The paper claims approximately shortest paths: check mean stretch on
  // a corridor network stays below 2.
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1200;
  spec.target_avg_deg = 8.0;
  spec.seed = 24;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::one_hole(), spec);
  const SkeletonResult r = extract(sc.graph);
  const SkeletonNaming naming(sc.graph, r);
  deploy::Rng rng(6);
  double stretch_sum = 0;
  int count = 0;
  for (int i = 0; i < 50; ++i) {
    const int s = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(sc.graph.n())));
    const int t = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(sc.graph.n())));
    if (s == t) continue;
    const auto route = naming.route(s, t);
    const auto sp = net::shortest_path(sc.graph, s, t);
    if (route.empty() || sp.size() < 6) continue;  // skip trivial pairs
    stretch_sum += static_cast<double>(route.size() - 1) /
                   static_cast<double>(sp.size() - 1);
    ++count;
  }
  ASSERT_GT(count, 20);
  EXPECT_LT(stretch_sum / count, 2.0);
}

TEST(RouteLoad, AccumulatesPerNode) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 500;
  spec.target_avg_deg = 8.0;
  spec.seed = 25;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::disk(), spec);
  const SkeletonResult r = extract(sc.graph);
  const SkeletonNaming naming(sc.graph, r);
  const RouteLoad rl = route_load(naming, {{0, 10}, {10, 0}, {3, 3}});
  EXPECT_EQ(rl.routed_pairs, 3);
  EXPECT_GT(rl.total_hops, 0);
  long long sum = 0;
  for (long long x : rl.load) sum += x;
  // Every hop contributes to two node visits minus shared endpoints;
  // just check the accounting is self-consistent.
  EXPECT_EQ(sum, rl.total_hops + rl.routed_pairs);
}

}  // namespace
}  // namespace skelex::core
