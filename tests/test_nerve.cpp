// Unit tests of the nerve construction (stage 3) on hand-built lattice
// worlds where the right answer is unambiguous:
//   * three cells meeting at a junction  -> filled triangle -> no loop;
//   * three cells around a hole          -> open triangle   -> loop kept;
//   * four cells meeting at a point      -> filled quad     -> no loop;
//   * four cells around a hole           -> open            -> loop kept.
#include <gtest/gtest.h>

#include <set>

#include "core/coarse.h"
#include "core/identify.h"
#include "core/index.h"
#include "core/voronoi.h"
#include "net/graph.h"

namespace skelex::core {
namespace {

// 4-connected W x H lattice with an optional rectangular hole
// [hx0, hx1] x [hy0, hy1] (cells removed from the edge set).
struct Grid {
  int w, h;
  net::Graph g;
  int id(int x, int y) const { return y * w + x; }
};

Grid make_grid(int w, int h, int hx0 = -1, int hy0 = -1, int hx1 = -2,
               int hy1 = -2) {
  Grid grid{w, h, net::Graph(w * h)};
  const auto in_hole = [&](int x, int y) {
    return x >= hx0 && x <= hx1 && y >= hy0 && y <= hy1;
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (in_hole(x, y)) continue;
      if (x + 1 < w && !in_hole(x + 1, y)) {
        grid.g.add_edge(grid.id(x, y), grid.id(x + 1, y));
      }
      if (y + 1 < h && !in_hole(x, y + 1)) {
        grid.g.add_edge(grid.id(x, y), grid.id(x, y + 1));
      }
    }
  }
  return grid;
}

Params grid_params() {
  Params p;
  p.k = 2;
  p.l = 2;
  return p;
}

CoarseSkeleton run_coarse(const Grid& grid, const std::vector<int>& sites,
                          const Params& p) {
  const IndexData idx = compute_index(grid.g, p);
  const VoronoiResult vor = build_voronoi(grid.g, sites, p);
  return build_coarse_skeleton(grid.g, idx, vor, p);
}

TEST(Nerve, ThreeCellsMeetingAtAJunctionFormNoLoop) {
  // Sites in three corners of a solid grid: the cells meet near the
  // center; the triangle must be filled and the coarse skeleton acyclic.
  const Grid grid = make_grid(21, 21);
  const Params p = grid_params();
  const CoarseSkeleton c =
      run_coarse(grid, {grid.id(2, 2), grid.id(18, 2), grid.id(10, 18)}, p);
  EXPECT_FALSE(c.triangles.empty());
  EXPECT_EQ(c.graph.cycle_rank(), 0);
  EXPECT_EQ(c.graph.component_count(), 1);
}

TEST(Nerve, ThreeCellsAroundAHoleKeepTheLoop) {
  // Same three sites, but a central hole separates the meeting point:
  // the triangle must NOT be filled; the loop around the hole stays.
  const Grid grid = make_grid(21, 21, 7, 7, 13, 13);
  const Params p = grid_params();
  const CoarseSkeleton c =
      run_coarse(grid, {grid.id(2, 2), grid.id(18, 2), grid.id(10, 18)}, p);
  EXPECT_EQ(c.graph.cycle_rank(), 1);
  EXPECT_EQ(c.graph.component_count(), 1);
}

TEST(Nerve, FourCellsMeetingAtAPointFormNoLoop) {
  // Sites in the four corners of a solid grid: the cells meet at the
  // center in a quad junction (no chord bands between diagonal cells);
  // the quad filling must keep the skeleton acyclic.
  const Grid grid = make_grid(21, 21);
  const Params p = grid_params();
  const CoarseSkeleton c = run_coarse(
      grid,
      {grid.id(2, 2), grid.id(18, 2), grid.id(2, 18), grid.id(18, 18)}, p);
  EXPECT_EQ(c.graph.cycle_rank(), 0);
  EXPECT_EQ(c.graph.component_count(), 1);
}

TEST(Nerve, FourCellsAroundAHoleKeepTheLoop) {
  const Grid grid = make_grid(21, 21, 7, 7, 13, 13);
  const Params p = grid_params();
  const CoarseSkeleton c = run_coarse(
      grid,
      {grid.id(2, 2), grid.id(18, 2), grid.id(2, 18), grid.id(18, 18)}, p);
  EXPECT_EQ(c.graph.cycle_rank(), 1);
  EXPECT_EQ(c.graph.component_count(), 1);
}

TEST(Nerve, TwoCellsAroundAHoleGetTwoBands) {
  // Two sites left and right of a central hole: their cells meet above
  // AND below the hole -> two bands -> the hole loop is realized.
  const Grid grid = make_grid(25, 15, 10, 5, 14, 9);
  const Params p = grid_params();
  const CoarseSkeleton c =
      run_coarse(grid, {grid.id(3, 7), grid.id(21, 7)}, p);
  ASSERT_EQ(c.bands.size(), 2u);
  EXPECT_EQ(c.realized_bands.size(), 2u);
  EXPECT_EQ(c.graph.cycle_rank(), 1);
}

TEST(Nerve, TwoCellsSolidGridGetOneBand) {
  // Without the hole the same two cells meet along one straight band.
  const Grid grid = make_grid(25, 15);
  const Params p = grid_params();
  const CoarseSkeleton c =
      run_coarse(grid, {grid.id(3, 7), grid.id(21, 7)}, p);
  EXPECT_EQ(c.bands.size(), 1u);
  EXPECT_EQ(c.graph.cycle_rank(), 0);
}

TEST(Nerve, SixCellsRingingAHole) {
  // Six sites around a big hole: consecutive cells meet; the nerve cycle
  // must survive (one loop), and no spurious second loop appears.
  const Grid grid = make_grid(25, 25, 9, 9, 15, 15);
  const Params p = grid_params();
  const CoarseSkeleton c = run_coarse(
      grid,
      {grid.id(12, 2), grid.id(2, 8), grid.id(2, 16), grid.id(12, 22),
       grid.id(22, 16), grid.id(22, 8)},
      p);
  EXPECT_EQ(c.graph.cycle_rank(), 1);
  EXPECT_EQ(c.graph.component_count(), 1);
}

TEST(Nerve, RealizedBandsAreWithinBandList) {
  const Grid grid = make_grid(15, 15);
  const Params p = grid_params();
  const CoarseSkeleton c =
      run_coarse(grid, {grid.id(2, 2), grid.id(12, 12)}, p);
  for (int e : c.realized_bands) {
    ASSERT_GE(e, 0);
    ASSERT_LT(e, static_cast<int>(c.bands.size()));
  }
  // Connectors align with realized bands.
  EXPECT_EQ(c.connectors.size(), c.realized_bands.size());
}

}  // namespace
}  // namespace skelex::core
