// Growth mirrors of net::remove_nodes (add_nodes / add_edges), the
// in-place Graph mutators for dynamic topologies, and CsrGraph delta
// maintenance — every delta-updated CSR must match the from-scratch
// CsrGraph(Graph) oracle elementwise (same neighbor order, not just the
// same edge set).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/csr.h"
#include "net/graph.h"

namespace skelex {
namespace {

net::Graph ring_graph(int n) {
  net::Graph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  return g;
}

// Elementwise CSR equality against the from-scratch snapshot of `g`.
void expect_csr_matches(const net::CsrGraph& csr, const net::Graph& g) {
  const net::CsrGraph oracle(g);
  ASSERT_EQ(csr.n(), oracle.n());
  EXPECT_EQ(csr.edge_count(), oracle.edge_count());
  for (int v = 0; v < oracle.n(); ++v) {
    ASSERT_EQ(csr.degree(v), oracle.degree(v)) << "node " << v;
    const auto a = csr.neighbors(v);
    const auto b = oracle.neighbors(v);
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "node " << v << " slot " << i;
    }
  }
}

TEST(AddNodes, MirrorsRemoveNodesOnPositionlessGraphs) {
  const net::Graph g = ring_graph(6);
  const net::Graph grown = net::add_nodes(g, 3);
  ASSERT_EQ(grown.n(), 9);
  EXPECT_EQ(grown.edge_count(), g.edge_count());
  for (int v = 0; v < g.n(); ++v) {
    const auto before = g.neighbors(v);
    const auto after = grown.neighbors(v);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i], after[i]);
    }
  }
  for (int v = g.n(); v < grown.n(); ++v) EXPECT_EQ(grown.degree(v), 0);

  // Round trip: removing exactly the appended nodes restores the input
  // edge set (remove_nodes rebuilds rows in ascending scan order, so
  // compare as sets, not element order).
  std::vector<char> dead(static_cast<std::size_t>(grown.n()), 0);
  for (int v = g.n(); v < grown.n(); ++v) {
    dead[static_cast<std::size_t>(v)] = 1;
  }
  const net::Graph back = net::remove_nodes(grown, dead);
  ASSERT_EQ(back.n(), g.n());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  for (int v = 0; v < g.n(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = back.neighbors(v);
    std::vector<int> before(a.begin(), a.end());
    std::vector<int> after(b.begin(), b.end());
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after) << "node " << v;
  }
}

TEST(AddNodes, PositionsOverloadCarriesCoordinates) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 200;
  spec.target_avg_deg = 9.0;
  spec.seed = 7;
  const auto scn = deploy::make_udg_scenario(geom::shapes::disk(10.0), spec);
  const std::vector<geom::Vec2> extra = {{1.5, 2.5}, {-3.0, 4.0}};
  const net::Graph grown = net::add_nodes(scn.graph, extra);
  ASSERT_EQ(grown.n(), scn.graph.n() + 2);
  ASSERT_TRUE(grown.has_positions());
  EXPECT_EQ(grown.position(scn.graph.n()).x, 1.5);
  EXPECT_EQ(grown.position(scn.graph.n() + 1).y, 4.0);
  EXPECT_EQ(grown.degree(scn.graph.n()), 0);
  EXPECT_EQ(grown.edge_count(), scn.graph.edge_count());

  // Mixing the overloads with the wrong kind of graph throws.
  EXPECT_THROW((void)net::add_nodes(scn.graph, 1), std::invalid_argument);
  EXPECT_THROW((void)net::add_nodes(ring_graph(4), extra),
               std::invalid_argument);
}

TEST(AddEdges, AppendsAtRowTailsLikeApplyDelta) {
  const net::Graph g = ring_graph(8);
  const std::vector<std::pair<int, int>> extra = {{0, 4}, {2, 6}};
  const net::Graph grown = net::add_edges(g, extra);
  EXPECT_EQ(grown.edge_count(), g.edge_count() + 2);
  // New partners appear after the preexisting ones, in insertion order.
  const auto row0 = grown.neighbors(0);
  ASSERT_EQ(row0.size(), 3u);
  EXPECT_EQ(row0[2], 4);

  net::CsrGraph csr(g);
  net::GraphDelta d;
  d.add_edges = extra;
  csr.apply_delta(d);
  expect_csr_matches(csr, grown);

  const std::vector<std::pair<int, int>> self = {{0, 0}};
  const std::vector<std::pair<int, int>> dup = {{0, 1}};
  const std::vector<std::pair<int, int>> oob = {{0, 99}};
  EXPECT_THROW((void)net::add_edges(g, self), std::invalid_argument);
  EXPECT_THROW((void)net::add_edges(g, dup), std::invalid_argument);
  EXPECT_THROW((void)net::add_edges(g, oob), std::out_of_range);
}

TEST(GraphMutators, InPlaceEditsKeepGraphFinalized) {
  net::Graph g = ring_graph(5);
  g.add_edge_unique(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 6);
  EXPECT_THROW(g.add_edge_unique(0, 2), std::invalid_argument);
  EXPECT_THROW(g.add_edge_unique(3, 3), std::invalid_argument);

  g.remove_edge(0, 2);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 5);
  EXPECT_THROW(g.remove_edge(0, 2), std::invalid_argument);

  const int added = g.add_node();
  EXPECT_EQ(added, 5);
  EXPECT_EQ(g.n(), 6);
  EXPECT_EQ(g.degree(added), 0);
  // Positionless graph rejects the positioned overload and vice versa.
  EXPECT_THROW((void)g.add_node({1.0, 1.0}), std::invalid_argument);
  net::Graph pg(std::vector<geom::Vec2>{{0, 0}, {1, 0}});
  EXPECT_THROW((void)pg.add_node(), std::invalid_argument);
  EXPECT_EQ(pg.add_node({2.0, 0.0}), 2);
}

TEST(CsrDelta, RemoveThenAddMatchesOracle) {
  net::Graph g = ring_graph(10);
  net::CsrGraph csr(g);

  net::GraphDelta d;
  d.remove_edges = {{0, 1}, {5, 6}};
  d.add_edges = {{0, 5}, {1, 6}};
  csr.apply_delta(d);

  g.remove_edge(0, 1);
  g.remove_edge(5, 6);
  g.add_edge_unique(0, 5);
  g.add_edge_unique(1, 6);
  expect_csr_matches(csr, g);

  // Re-adding a just-removed edge lands at the row tail, like the
  // in-place mutator.
  net::GraphDelta d2;
  d2.remove_edges = {{2, 3}};
  csr.apply_delta(d2);
  g.remove_edge(2, 3);
  net::GraphDelta d3;
  d3.add_edges = {{2, 3}};
  csr.apply_delta(d3);
  g.add_edge_unique(2, 3);
  expect_csr_matches(csr, g);
}

TEST(CsrDelta, NodeGrowthAndForcedRepack) {
  net::Graph g = ring_graph(4);
  net::CsrGraph csr(g);

  // Grow the id space, then pile edges onto one node until its row
  // overflows its capacity (degree 2 in the ring) repeatedly, forcing
  // deterministic repacks.
  net::GraphDelta grow;
  grow.add_node_count = 3;
  csr.apply_delta(grow);
  for (int i = 0; i < 3; ++i) (void)g.add_node();
  expect_csr_matches(csr, g);

  net::GraphDelta wire;
  wire.add_edges = {{0, 4}, {0, 5}, {0, 6}, {1, 4}, {2, 5}, {4, 6}};
  csr.apply_delta(wire);
  for (const auto& [u, v] : wire.add_edges) g.add_edge_unique(u, v);
  expect_csr_matches(csr, g);

  // Validation: unknown nodes, self loops, duplicates (existing and
  // intra-delta) are all rejected.
  net::GraphDelta bad;
  bad.add_edges = {{0, 99}};
  EXPECT_THROW(csr.apply_delta(bad), std::out_of_range);
  bad.add_edges = {{3, 3}};
  EXPECT_THROW(csr.apply_delta(bad), std::invalid_argument);
  bad.add_edges = {{0, 4}};
  EXPECT_THROW(csr.apply_delta(bad), std::invalid_argument);
  bad.add_edges = {{1, 5}, {5, 1}};
  EXPECT_THROW(csr.apply_delta(bad), std::invalid_argument);
  bad.add_edges.clear();
  bad.remove_edges = {{1, 3}};  // never linked
  EXPECT_THROW(csr.apply_delta(bad), std::invalid_argument);
  // A failed delta must not have corrupted the CSR.
  expect_csr_matches(csr, g);
}

TEST(CsrDelta, ChurnSequenceOnUdgScenarioMatchesOracle) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 300;
  spec.target_avg_deg = 8.0;
  spec.seed = 21;
  const auto scn = deploy::make_udg_scenario(geom::shapes::disk(12.0), spec);
  net::Graph g = scn.graph;
  net::CsrGraph csr(g);

  deploy::Rng rng(99);
  for (int step = 0; step < 60; ++step) {
    const int v = static_cast<int>(rng.next_below(g.n()));
    if (g.degree(v) > 0 && rng.next_double() < 0.5) {
      const auto row = g.neighbors(v);
      const int w = row[rng.next_below(row.size())];
      net::GraphDelta d;
      d.remove_edges = {{v, w}};
      csr.apply_delta(d);
      g.remove_edge(v, w);
    } else {
      const int w = static_cast<int>(rng.next_below(g.n()));
      if (w == v || g.has_edge(v, w)) continue;
      net::GraphDelta d;
      d.add_edges = {{v, w}};
      csr.apply_delta(d);
      g.add_edge_unique(v, w);
    }
  }
  expect_csr_matches(csr, g);
}

}  // namespace
}  // namespace skelex
