// The obs/ telemetry subsystem: metrics registry (sharded recording,
// deterministic merged snapshots at any thread count), span tracing
// (sink resolution, Chrome JSON shape), and the engine's per-round time
// series (totals agree with RunStats; the reliable wrapper attributes
// retransmissions to rounds).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/protocols.h"
#include "core/reliable.h"
#include "deploy/scenario.h"
#include "exec/thread_pool.h"
#include "geometry/shapes.h"
#include "io/json.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/trace.h"
#include "sim/engine.h"

namespace {

using namespace skelex;

// --- Metrics registry --------------------------------------------------------

TEST(Metrics, CounterAccumulatesAcrossHandles) {
  obs::Registry reg;
  const obs::Counter a = reg.counter("events");
  const obs::Counter b = reg.counter("events");  // same cells
  a.inc();
  b.inc(41);
  const obs::MetricSnapshot snap = reg.snapshot();
  const auto* e = snap.find("events");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, 'c');
  EXPECT_EQ(e->value, 42);
}

TEST(Metrics, LabelsAreCanonicalizedSortedByKey) {
  obs::Registry reg;
  reg.counter("hits", {{"zone", "b"}, {"alpha", "a"}}).inc(3);
  const obs::MetricSnapshot snap = reg.snapshot();
  const auto* e = snap.find("hits", "alpha=a,zone=b");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 3);
  // Different label values are distinct series.
  reg.counter("hits", {{"zone", "c"}, {"alpha", "a"}}).inc(1);
  EXPECT_EQ(reg.snapshot().entries.size(), 2u);
}

TEST(Metrics, GaugeIsHighWatermark) {
  obs::Registry reg;
  const obs::Gauge g = reg.gauge("peak");
  {
    const obs::MetricSnapshot snap = reg.snapshot();
    const auto* e = snap.find("peak");
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(e->gauge_set);
  }
  g.set(2.5);
  g.set(7.0);
  g.set(3.0);  // lower: ignored
  const obs::MetricSnapshot snap = reg.snapshot();
  const auto* e = snap.find("peak");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->gauge_set);
  EXPECT_DOUBLE_EQ(e->gauge, 7.0);
}

TEST(Metrics, HistogramBucketsUseLeSemantics) {
  obs::Registry reg;
  const obs::Histogram h = reg.histogram("sizes", {1.0, 10.0, 100.0});
  h.observe(0.5);    // le 1
  h.observe(1.0);    // le 1 (inclusive)
  h.observe(5.0);    // le 10
  h.observe(1000.0); // +inf
  const obs::MetricSnapshot snap = reg.snapshot();
  const auto* e = snap.find("sizes");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, 'h');
  EXPECT_EQ(e->count, 4);
  ASSERT_EQ(e->buckets.size(), 4u);  // 3 bounds + inf
  EXPECT_EQ(e->buckets[0], 2);
  EXPECT_EQ(e->buckets[1], 1);
  EXPECT_EQ(e->buckets[2], 0);
  EXPECT_EQ(e->buckets[3], 1);
}

TEST(Metrics, KindAndBoundsMismatchesThrow) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x", {1.0}), std::logic_error);
  reg.histogram("hist", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("hist", {1.0, 3.0}), std::logic_error);
}

TEST(Metrics, ResetZeroesButKeepsDefinitionsAndHandles) {
  obs::Registry reg;
  const obs::Counter c = reg.counter("n");
  c.inc(5);
  reg.reset();
  const obs::MetricSnapshot after_reset = reg.snapshot();
  const auto* e = after_reset.find("n");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 0);
  c.inc(2);  // handle still valid after reset
  const obs::MetricSnapshot after_inc = reg.snapshot();
  EXPECT_EQ(after_inc.find("n")->value, 2);
}

TEST(Metrics, SnapshotIsByteIdenticalAcrossThreadCounts) {
  // The determinism contract: thread-count-invariant recording merges to
  // identical snapshots (and identical JSON) at 1 and N threads.
  const auto run = [](int threads) {
    obs::Registry reg;
    const obs::Counter items = reg.counter("items");
    const obs::Gauge peak = reg.gauge("peak_value");
    const obs::Histogram sizes = reg.histogram("sizes", {8, 64, 512});
    exec::ThreadPool pool(threads);
    pool.parallel_for(400, [&](int i) {
      items.inc();
      const std::uint64_t v = exec::derive_seed(7, static_cast<std::uint64_t>(i));
      peak.set(static_cast<double>(v % 1000));
      sizes.observe(static_cast<double>(v % 700));
    });
    io::JsonWriter j;
    reg.snapshot().write_json(j);
    return j.str();
  };
  const std::string at1 = run(1);
  EXPECT_EQ(run(4), at1);
  EXPECT_EQ(run(8), at1);
}

// --- Span tracing ------------------------------------------------------------

TEST(Trace, DisabledMeansNoSinkAndInactiveSpans) {
  ASSERT_EQ(obs::Tracer::current(), nullptr);
  EXPECT_FALSE(obs::Tracer::enabled());
  obs::ScopedSpan span("noop", "test");
  EXPECT_FALSE(span.active());
  obs::Tracer::instant("noop", "test");  // must not crash
}

TEST(Trace, ThreadLocalSinkOverridesGlobalAndRestores) {
  obs::MemoryTraceSink global_sink;
  obs::MemoryTraceSink local_sink;
  obs::Tracer::set_global(&global_sink);
  {
    obs::ScopedThreadSink scope(&local_sink);
    EXPECT_EQ(obs::Tracer::current(), &local_sink);
    obs::Tracer::instant("inner", "test");
  }
  EXPECT_EQ(obs::Tracer::current(), &global_sink);
  obs::Tracer::instant("outer", "test");
  obs::Tracer::set_global(nullptr);
  EXPECT_EQ(local_sink.size(), 1u);
  EXPECT_EQ(global_sink.size(), 1u);
  EXPECT_EQ(local_sink.events()[0].name, "inner");
  EXPECT_EQ(global_sink.events()[0].name, "outer");
}

TEST(Trace, ScopedSpanRecordsDurationAndArgs) {
  obs::MemoryTraceSink sink;
  {
    obs::ScopedThreadSink scope(&sink);
    obs::ScopedSpan span("work", "test");
    EXPECT_TRUE(span.active());
    span.arg("items", 12);
  }
  ASSERT_EQ(sink.size(), 1u);
  const obs::TraceEvent e = sink.events()[0];
  EXPECT_EQ(e.name, "work");
  EXPECT_EQ(e.phase, 'X');
  EXPECT_GE(e.dur_us, 0.0);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_STREQ(e.args[0].first, "items");
  EXPECT_EQ(e.args[0].second, 12);
}

TEST(Trace, ChromeJsonShape) {
  obs::MemoryTraceSink sink;
  {
    obs::ScopedThreadSink scope(&sink);
    obs::ScopedSpan span("alpha", "test");
    obs::Tracer::instant("tick", "test", {{"n", 3}});
  }
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 3"), std::string::npos);
}

// --- Engine round series -----------------------------------------------------

net::Graph small_network() {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 250;
  spec.target_avg_deg = 7.0;
  spec.seed = 11;
  return deploy::make_udg_scenario(geom::shapes::disk(), spec).graph;
}

TEST(RoundSeries, DisabledByDefaultAndEmpty) {
  const net::Graph g = small_network();
  sim::Engine engine(g);
  EXPECT_FALSE(engine.round_series_enabled());
  EXPECT_EQ(engine.active_round_series(), nullptr);
  core::KhopSizeProtocol p(g.n(), 2);
  const sim::RunStats stats = engine.run(p);
  EXPECT_TRUE(stats.series.empty());
}

TEST(RoundSeries, TotalsMatchRunStats) {
  const net::Graph g = small_network();
  sim::Engine engine(g);
  engine.enable_round_series(true);
  core::KhopSizeProtocol p(g.n(), 3);
  const sim::RunStats stats = engine.run(p);
  ASSERT_FALSE(stats.series.empty());
  // One sample per round plus the on_start sample (round 0).
  EXPECT_EQ(static_cast<int>(stats.series.size()), stats.rounds + 1);
  EXPECT_EQ(stats.series.total_transmissions(), stats.transmissions);
  std::int64_t rx = 0, drops = 0;
  for (const obs::RoundSample& s : stats.series.samples()) {
    rx += s.receptions;
    drops += s.fault_drops;
  }
  EXPECT_EQ(rx, stats.receptions);
  EXPECT_EQ(drops, stats.total_fault_drops());
  // The flood starts with every node broadcasting in round 0.
  EXPECT_EQ(stats.series.samples()[0].transmissions, g.n());
  EXPECT_GT(stats.series.peak_queue_depth(), 0);
}

TEST(RoundSeries, PipelineTotalConcatenatesStageCurves) {
  const net::Graph g = small_network();
  sim::Engine engine(g);
  engine.enable_round_series(true);
  const core::DistributedRun run =
      core::run_distributed_stages(g, core::Params{}, engine);
  const sim::RunStats total = run.total();
  ASSERT_FALSE(total.series.empty());
  // Four stages, each contributing rounds+1 samples on one clock.
  EXPECT_EQ(static_cast<int>(total.series.size()), total.rounds + 4);
  EXPECT_EQ(total.series.total_transmissions(), total.transmissions);
  // Each stage's curve is shifted by the rounds completed before it, so
  // the last sample lands on the lifetime round clock's final value
  // (stage boundaries share a round: run i+1's round 0 IS run i's end).
  EXPECT_EQ(total.series.samples().back().round, total.rounds);
}

TEST(RoundSeries, ReliableWrapperAttributesRetransmissions) {
  const net::Graph g = small_network();
  sim::Engine engine(g);
  engine.set_loss(0.2, 99);
  engine.enable_round_series(true);
  core::ReliableOptions opts;
  core::KhopSizeProtocol inner(g.n(), 2);
  opts.max_logical_rounds = 2;
  core::ReliableFloodWrapper w(inner, g, opts);
  const sim::RunStats stats = engine.run(w);
  const core::ReliableStats rel = w.stats();
  ASSERT_GT(rel.retransmissions, 0) << "loss must force retransmissions";
  EXPECT_EQ(stats.series.total_retransmissions(), rel.retransmissions);
}

}  // namespace
