// End-to-end reproduction of Fig. 4 as a test suite: for every scenario
// of the paper's evaluation, the extracted skeleton must be connected,
// homotopy-correct (one cycle per hole), medially placed, and must cover
// the reference medial axis.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/medial_axis_ref.h"
#include "geometry/shapes.h"
#include "metrics/homotopy.h"
#include "metrics/quality.h"

namespace skelex {
namespace {

class PaperScenarioTest
    : public ::testing::TestWithParam<geom::shapes::NamedShape> {};

TEST_P(PaperScenarioTest, SkeletonReproducesTheFigure) {
  const geom::shapes::NamedShape& scenario = GetParam();
  deploy::ScenarioSpec spec;
  spec.target_nodes = scenario.paper_nodes;
  // The paper's lowest densities (avg deg 5.75-6.6) sit right at the
  // connectivity threshold; run the test suite a notch above so the
  // deployment itself (not the algorithm) is not the flaky part. The
  // density sweep bench exercises the paper's exact degrees.
  spec.target_avg_deg = std::max(scenario.paper_avg_deg, 6.8);
  spec.seed = 20260704;
  const deploy::Scenario sc = deploy::make_udg_scenario(scenario.region, spec);
  const net::Graph& g = sc.graph;
  ASSERT_GT(g.n(), scenario.paper_nodes * 3 / 4)
      << scenario.name << ": deployment fragmented";

  const core::SkeletonResult r = core::extract_skeleton(g, core::Params{});

  // Connected, non-trivial skeleton built from real links.
  ASSERT_GT(r.skeleton.node_count(), 5) << scenario.name;
  EXPECT_EQ(r.skeleton.component_count(), 1) << scenario.name;

  // Homotopy: cycle rank == number of holes.
  const metrics::HomotopyCheck hom =
      metrics::check_homotopy(g, r.skeleton, scenario.region);
  EXPECT_TRUE(hom.ok) << scenario.name << ": cycles " << hom.skeleton_cycles
                      << " vs holes " << hom.region_holes;

  // Medialness: skeleton nodes stay within ~2 radio ranges of the true
  // axis on average (connectivity resolves position only to ~R).
  const geom::ReferenceMedialAxis axis(scenario.region);
  ASSERT_FALSE(axis.empty()) << scenario.name;
  const metrics::Medialness med = metrics::medialness(g, r.skeleton, axis);
  EXPECT_LT(med.mean, 2.0 * sc.range) << scenario.name << " " << med;
  EXPECT_LT(med.max, 5.5 * sc.range) << scenario.name << " " << med;

  // Coverage: the skeleton spans most of the axis. Pruning legitimately
  // stops several hops short of sharp extremities (star points, flower
  // petals, wing tips) — the paper's own figures show the same — and
  // the reference axis keeps some corner spurs no skeleton should chase.
  EXPECT_GT(metrics::axis_coverage(g, r.skeleton, axis, 3.0 * sc.range), 0.75)
      << scenario.name;
}

INSTANTIATE_TEST_SUITE_P(
    Fig4, PaperScenarioTest,
    ::testing::ValuesIn(geom::shapes::paper_scenarios()),
    [](const auto& info) { return info.param.name; });

// Fig. 1's Window network at the paper's parameters, across seeds: the
// flagship scenario must be robust, not a lucky draw.
class WindowSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowSeedTest, HomotopyAndConnectivity) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 5.96;
  spec.seed = GetParam();
  const geom::Region region = geom::shapes::window();
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const core::SkeletonResult r =
      core::extract_skeleton(sc.graph, core::Params{});
  EXPECT_EQ(r.skeleton.component_count(), 1);
  EXPECT_EQ(r.skeleton_cycle_rank(), 4) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowSeedTest,
                         ::testing::Values(1u, 7u, 42u, 123u, 999u));

// Multi-seed homotopy sweep: every Fig. 4 scenario, several seeds, zero
// misses allowed (an 8-seed offline sweep measured 80/80).
TEST(PaperScenarios, HomotopyHoldsAcrossSeeds) {
  int total = 0, ok = 0;
  for (const geom::shapes::NamedShape& s : geom::shapes::paper_scenarios()) {
    for (std::uint64_t seed : {10u, 42u, 777u}) {
      deploy::ScenarioSpec spec;
      spec.target_nodes = s.paper_nodes;
      spec.target_avg_deg = std::max(s.paper_avg_deg, 6.8);
      spec.seed = seed;
      const deploy::Scenario sc = deploy::make_udg_scenario(s.region, spec);
      const core::SkeletonResult r =
          core::extract_skeleton(sc.graph, core::Params{});
      const bool good =
          r.skeleton.component_count() == 1 &&
          r.skeleton_cycle_rank() == static_cast<int>(s.region.hole_count());
      EXPECT_TRUE(good) << s.name << " seed " << seed << ": rank "
                        << r.skeleton_cycle_rank() << "/"
                        << s.region.hole_count() << ", comps "
                        << r.skeleton.component_count();
      ++total;
      ok += good;
    }
  }
  EXPECT_EQ(ok, total);
}

}  // namespace
}  // namespace skelex
