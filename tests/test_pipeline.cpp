#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <string>

#include "deploy/scenario.h"
#include "geometry/medial_axis_ref.h"
#include "geometry/shapes.h"
#include "metrics/homotopy.h"
#include "metrics/quality.h"

namespace skelex::core {
namespace {

struct PipelineCase {
  std::string shape;
  int nodes;
  double avg_deg;
  std::uint64_t seed;
  int holes;  // expected skeleton cycle rank
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineTest, EndToEndInvariants) {
  const PipelineCase& tc = GetParam();
  const geom::Region region = geom::shapes::by_name(tc.shape);
  deploy::ScenarioSpec spec;
  spec.target_nodes = tc.nodes;
  spec.target_avg_deg = tc.avg_deg;
  spec.seed = tc.seed;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const net::Graph& g = sc.graph;
  const SkeletonResult r = extract_skeleton(g, Params{});

  // Structure: non-empty connected skeleton whose edges are real links.
  ASSERT_GT(r.skeleton.node_count(), 0);
  EXPECT_EQ(r.skeleton.component_count(), 1);
  for (int v : r.skeleton.nodes()) {
    for (int w : r.skeleton.neighbors(v)) {
      EXPECT_TRUE(g.has_edge(v, w));
    }
  }

  // Homotopy: one cycle per region hole (the paper's headline claim).
  EXPECT_EQ(r.skeleton_cycle_rank(), tc.holes) << tc.shape;

  // Medialness: skeleton nodes within a couple of radio ranges of the
  // true medial axis on average.
  const geom::ReferenceMedialAxis axis(region);
  const metrics::Medialness med = metrics::medialness(g, r.skeleton, axis);
  EXPECT_LT(med.mean, 2.0 * sc.range) << tc.shape;

  // Intermediate stages are all populated.
  EXPECT_FALSE(r.critical_nodes.empty());
  EXPECT_EQ(r.voronoi().cell_count(),
            static_cast<int>(r.critical_nodes.size()));
  EXPECT_GE(r.coarse().node_count(), r.skeleton.node_count() ? 1 : 0);
  EXPECT_EQ(static_cast<int>(r.index().index.size()), g.n());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineTest,
    ::testing::Values(PipelineCase{"window", 2592, 5.96, 7, 4},
                      PipelineCase{"window", 2592, 5.96, 8, 4},
                      PipelineCase{"annulus", 1600, 7.0, 9, 1},
                      PipelineCase{"cross", 1400, 7.0, 10, 0},
                      PipelineCase{"lshape", 1400, 7.0, 11, 0},
                      PipelineCase{"two_holes", 2000, 7.0, 12, 2},
                      PipelineCase{"corridor", 900, 8.0, 13, 0}),
    [](const auto& info) {
      return info.param.shape + "_seed" + std::to_string(info.param.seed);
    });

TEST(Pipeline, DeterministicForFixedSeed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 900;
  spec.target_avg_deg = 7.0;
  spec.seed = 77;
  const geom::Region region = geom::shapes::star();
  const deploy::Scenario a = deploy::make_udg_scenario(region, spec);
  const deploy::Scenario b = deploy::make_udg_scenario(region, spec);
  const SkeletonResult ra = extract_skeleton(a.graph, Params{});
  const SkeletonResult rb = extract_skeleton(b.graph, Params{});
  EXPECT_EQ(ra.critical_nodes, rb.critical_nodes);
  EXPECT_EQ(ra.skeleton.nodes(), rb.skeleton.nodes());
  EXPECT_EQ(ra.skeleton.edge_count(), rb.skeleton.edge_count());
}

TEST(Pipeline, SkeletonNodesHaveHighIndex) {
  // Skeleton nodes should be drawn from the upper part of the index
  // distribution (they are medial by construction).
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1200;
  spec.target_avg_deg = 7.0;
  spec.seed = 3;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::flower(), spec);
  const SkeletonResult r = extract_skeleton(sc.graph, Params{});
  double skel_mean = 0, all_mean = 0;
  for (int v : r.skeleton.nodes()) {
    skel_mean += r.index().index[static_cast<std::size_t>(v)];
  }
  skel_mean /= r.skeleton.node_count();
  for (double x : r.index().index) all_mean += x;
  all_mean /= static_cast<double>(r.index().index.size());
  EXPECT_GT(skel_mean, all_mean);
}

TEST(Pipeline, RejectsBadParams) {
  net::Graph g(10);
  Params p;
  p.k = 0;
  EXPECT_THROW(extract_skeleton(g, p), std::invalid_argument);
}

TEST(Pipeline, TinyGraphsDoNotCrash) {
  // Degenerate inputs: empty, single node, single edge.
  EXPECT_NO_THROW(extract_skeleton(net::Graph(0), Params{}));
  const SkeletonResult one = extract_skeleton(net::Graph(1), Params{});
  EXPECT_EQ(one.skeleton.node_count(), 1);  // the node is its own skeleton
  net::Graph pair(2);
  pair.add_edge(0, 1);
  const SkeletonResult two = extract_skeleton(pair, Params{});
  EXPECT_GE(two.skeleton.node_count(), 1);
}

TEST(Pipeline, DisconnectedGraphYieldsSkeletonPerComponent) {
  // Two disjoint paths.
  net::Graph g(10);
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  for (int i = 5; i < 9; ++i) g.add_edge(i, i + 1);
  const SkeletonResult r = extract_skeleton(g, Params{});
  EXPECT_EQ(r.skeleton.component_count(), 2);
}

}  // namespace
}  // namespace skelex::core
