// The external-CSR pipeline front: extract_skeleton(g, csr, ...) must
// traverse the caller's CSR snapshot (never Graph::csr()'s cached
// rebuild) and produce results identical to the plain driver — for a
// fresh snapshot and, the case that motivates it, for a CSR maintained
// through apply_delta across topology churn.
#include <gtest/gtest.h>

#include <utility>

#include "core/fingerprint.h"
#include "core/memo/stage_cache.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/csr.h"

namespace skelex::core {
namespace {

net::Graph smile_graph(std::uint64_t seed = 3) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 600;
  spec.target_avg_deg = 7.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::smile(), spec).graph;
}

// One churn event, mirrored into the Graph (in-place mutators) and the
// externally maintained CSR (apply_delta): drop one existing edge, link
// one currently non-adjacent pair.
void churn_once(net::Graph& g, net::CsrGraph& csr, int anchor) {
  const int old_nb = g.neighbors(anchor)[0];
  int new_nb = -1;
  for (int v = 0; v < g.n(); ++v) {
    if (v != anchor && v != old_nb && !g.has_edge(anchor, v)) {
      new_nb = v;
      break;
    }
  }
  ASSERT_GE(new_nb, 0);
  net::GraphDelta d;
  d.remove_edges.push_back({anchor, old_nb});
  d.add_edges.push_back({anchor, new_nb});
  g.remove_edge(anchor, old_nb);
  g.add_edge_unique(anchor, new_nb);
  csr.apply_delta(d);
}

TEST(ExternalCsr, FreshSnapshotMatchesPlainDriver) {
  const net::Graph g = smile_graph();
  const net::CsrGraph csr(g);
  const SkeletonResult plain = extract_skeleton(g, Params{});
  const SkeletonResult ext = extract_skeleton(g, csr, Params{});
  EXPECT_EQ(result_fingerprint(ext), result_fingerprint(plain));
}

TEST(ExternalCsr, PipelineContextUsesTheGivenCsr) {
  const net::Graph g = smile_graph();
  const net::CsrGraph csr(g);
  SkeletonResult r;
  PipelineContext ctx(g, csr, r.params, r);
  // The context must alias the caller's snapshot, not Graph::csr().
  EXPECT_EQ(&ctx.csr, &csr);
  EXPECT_EQ(ctx.csr.n(), g.n());
}

TEST(ExternalCsr, DeltaMaintainedCsrMatchesPlainDriverAfterChurn) {
  net::Graph g = smile_graph();
  net::CsrGraph csr(g);
  for (int round = 0; round < 5; ++round) {
    churn_once(g, csr, 7 * round + 1);
  }
  // The maintained CSR describes the mutated graph exactly...
  EXPECT_EQ(graph_fingerprint(csr), graph_fingerprint(net::CsrGraph(g)));
  // ...and extraction over it equals extraction over a fresh rebuild.
  const SkeletonResult ext = extract_skeleton(g, csr, Params{});
  const SkeletonResult plain = extract_skeleton(g, Params{});
  EXPECT_EQ(result_fingerprint(ext), result_fingerprint(plain));
}

TEST(ExternalCsr, MemoHitsAcrossEquivalentCsrViews) {
  net::Graph g = smile_graph();
  net::CsrGraph maintained(g);
  churn_once(g, maintained, 4);

  memo::StageCache cache;
  const net::CsrGraph rebuilt(g);
  const SkeletonResult cold = extract_skeleton(g, rebuilt, Params{}, &cache);
  // Same live content, different CSR object (and possibly different
  // internal slack layout): the stage keys must match, so the second
  // run is fully warm and shares the cold run's stage values.
  const SkeletonResult warm = extract_skeleton(g, maintained, Params{}, &cache);
  EXPECT_EQ(cold.index_out.get(), warm.index_out.get());
  EXPECT_EQ(cold.voronoi_out.get(), warm.voronoi_out.get());
  EXPECT_EQ(cold.coarse_out.get(), warm.coarse_out.get());
  EXPECT_EQ(result_fingerprint(cold), result_fingerprint(warm));
}

TEST(ExternalCsr, GrowthDeltaWithNewNodeMatchesRebuild) {
  net::Graph g = smile_graph(9);
  net::CsrGraph csr(g);
  // A join: one new node linked to three existing ones.
  net::GraphDelta d;
  d.add_node_count = 1;
  const int joiner = g.n();
  d.add_edges = {{joiner, 1}, {joiner, 2}, {joiner, 3}};
  g.add_node(g.position(1));
  g.add_edge_unique(joiner, 1);
  g.add_edge_unique(joiner, 2);
  g.add_edge_unique(joiner, 3);
  csr.apply_delta(d);

  EXPECT_EQ(graph_fingerprint(csr), graph_fingerprint(net::CsrGraph(g)));
  const SkeletonResult ext = extract_skeleton(g, csr, Params{});
  const SkeletonResult plain = extract_skeleton(g, Params{});
  EXPECT_EQ(result_fingerprint(ext), result_fingerprint(plain));
}

}  // namespace
}  // namespace skelex::core
