#include "geometry/polygon.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace skelex::geom {
namespace {

Ring unit_square() { return make_rect({0, 0}, {1, 1}); }

TEST(Ring, RejectsDegenerate) {
  EXPECT_THROW(Ring({{0, 0}, {1, 0}}), std::invalid_argument);
}

TEST(Ring, AreaAndOrientation) {
  const Ring sq = unit_square();  // make_rect is CCW
  EXPECT_DOUBLE_EQ(sq.signed_area(), 1.0);
  EXPECT_DOUBLE_EQ(sq.area(), 1.0);
  const Ring rev = sq.reversed();
  EXPECT_DOUBLE_EQ(rev.signed_area(), -1.0);
  EXPECT_DOUBLE_EQ(rev.area(), 1.0);
}

TEST(Ring, Perimeter) {
  EXPECT_DOUBLE_EQ(unit_square().perimeter(), 4.0);
  const Ring tri({{0, 0}, {3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(tri.perimeter(), 12.0);
}

TEST(Ring, ContainsInteriorExteriorBoundary) {
  const Ring sq = unit_square();
  EXPECT_TRUE(sq.contains({0.5, 0.5}));
  EXPECT_FALSE(sq.contains({1.5, 0.5}));
  EXPECT_FALSE(sq.contains({-0.1, 0.5}));
  // Boundary points count as inside.
  EXPECT_TRUE(sq.contains({0.0, 0.5}));
  EXPECT_TRUE(sq.contains({0.5, 1.0}));
  EXPECT_TRUE(sq.contains({0.0, 0.0}));
}

TEST(Ring, ContainsConcave) {
  // L-shape: the notch is outside.
  const Ring l({{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(l.contains({0.5, 1.5}));
  EXPECT_TRUE(l.contains({1.5, 0.5}));
  EXPECT_FALSE(l.contains({1.5, 1.5}));
}

TEST(Ring, DistanceAndClosestPoint) {
  const Ring sq = unit_square();
  EXPECT_DOUBLE_EQ(sq.distance_to({0.5, 0.5}), 0.5);
  EXPECT_DOUBLE_EQ(sq.distance_to({0.5, 2.0}), 1.0);
  const Vec2 c = sq.closest_boundary_point({0.5, 2.0});
  EXPECT_DOUBLE_EQ(c.x, 0.5);
  EXPECT_DOUBLE_EQ(c.y, 1.0);
  // Corner is the closest point for diagonal exterior queries.
  const Vec2 corner = sq.closest_boundary_point({2.0, 2.0});
  EXPECT_DOUBLE_EQ(corner.x, 1.0);
  EXPECT_DOUBLE_EQ(corner.y, 1.0);
}

TEST(Ring, BoundingBox) {
  Vec2 lo, hi;
  Ring({{1, 2}, {5, -1}, {3, 7}}).bounding_box(lo, hi);
  EXPECT_EQ(lo, Vec2(1, -1));
  EXPECT_EQ(hi, Vec2(5, 7));
}

TEST(Region, ContainsRespectsHoles) {
  Region r(make_rect({0, 0}, {10, 10}), {make_rect({4, 4}, {6, 6})});
  EXPECT_TRUE(r.contains({1, 1}));
  EXPECT_FALSE(r.contains({5, 5}));     // inside the hole
  EXPECT_FALSE(r.contains({11, 5}));    // outside everything
  EXPECT_TRUE(r.contains({4.0, 5.0}));  // on the hole rim: closed region
}

TEST(Region, RejectsHoleOutsideOuter) {
  EXPECT_THROW(
      Region(make_rect({0, 0}, {2, 2}), {make_rect({5, 5}, {6, 6})}),
      std::invalid_argument);
}

TEST(Region, AreaSubtractsHoles) {
  Region r(make_rect({0, 0}, {10, 10}), {make_rect({4, 4}, {6, 6})});
  EXPECT_DOUBLE_EQ(r.area(), 96.0);
  EXPECT_DOUBLE_EQ(r.perimeter(), 48.0);
  EXPECT_EQ(r.hole_count(), 1u);
}

TEST(Region, DistanceToBoundaryPicksNearestRing) {
  Region r(make_rect({0, 0}, {10, 10}), {make_rect({4, 4}, {6, 6})});
  // Point near the hole: hole rim is closer than outer rim.
  EXPECT_DOUBLE_EQ(r.distance_to_boundary({3.5, 5.0}), 0.5);
  // Point near the outer rim.
  EXPECT_DOUBLE_EQ(r.distance_to_boundary({0.5, 5.0}), 0.5);
  const Vec2 c = r.closest_boundary_point({3.5, 5.0});
  EXPECT_DOUBLE_EQ(c.x, 4.0);
}

TEST(MakeRegularPolygon, VerticesOnCircle) {
  const Ring hex = make_regular_polygon({0, 0}, 2.0, 6);
  EXPECT_EQ(hex.size(), 6u);
  for (const Vec2& p : hex.points()) {
    EXPECT_NEAR(p.norm(), 2.0, 1e-12);
  }
  // Area approaches pi r^2 from below.
  EXPECT_LT(hex.area(), std::numbers::pi * 4.0);
  EXPECT_GT(hex.area(), 0.8 * std::numbers::pi * 4.0);
  EXPECT_THROW(make_regular_polygon({0, 0}, 1.0, 2), std::invalid_argument);
}

TEST(MakeStar, AlternatesRadii) {
  const Ring star = make_star({0, 0}, 10.0, 4.0, 5);
  EXPECT_EQ(star.size(), 10u);
  for (std::size_t i = 0; i < star.size(); ++i) {
    EXPECT_NEAR(star[i].norm(), i % 2 == 0 ? 10.0 : 4.0, 1e-12);
  }
  EXPECT_TRUE(star.contains({0, 0}));
}

TEST(MakeFlower, RadiusOscillates) {
  const Ring f = make_flower({0, 0}, 10.0, 3.0, 5, 100);
  EXPECT_EQ(f.size(), 100u);
  double rmin = 1e18, rmax = 0;
  for (const Vec2& p : f.points()) {
    rmin = std::min(rmin, p.norm());
    rmax = std::max(rmax, p.norm());
  }
  EXPECT_NEAR(rmax, 13.0, 0.05);
  EXPECT_NEAR(rmin, 7.0, 0.05);
}

TEST(MakeThickPolyline, StraightBand) {
  const Ring band = make_thick_polyline({{0, 0}, {10, 0}}, 1.0);
  EXPECT_EQ(band.size(), 4u);
  EXPECT_NEAR(band.area(), 20.0, 1e-9);
  EXPECT_TRUE(band.contains({5, 0.5}));
  EXPECT_TRUE(band.contains({5, -0.5}));
  EXPECT_FALSE(band.contains({5, 1.5}));
}

TEST(MakeThickPolyline, Validation) {
  EXPECT_THROW(make_thick_polyline({{0, 0}}, 1.0), std::invalid_argument);
  EXPECT_THROW(make_thick_polyline({{0, 0}, {1, 0}}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace skelex::geom
