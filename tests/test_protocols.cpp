// Equivalence of the distributed (message-passing) stage implementations
// with their centralized counterparts, plus the message/round accounting
// behind Theorem 5.
#include "core/protocols.h"

#include <gtest/gtest.h>

#include <string>

#include "core/identify.h"
#include "core/index.h"
#include "core/voronoi.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"
#include "net/khop.h"

namespace skelex::core {
namespace {

struct EquivalenceCase {
  std::string shape;
  int nodes;
  double avg_deg;
  std::uint64_t seed;
};

class ProtocolEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(ProtocolEquivalenceTest, DistributedMatchesCentralized) {
  const EquivalenceCase& tc = GetParam();
  deploy::ScenarioSpec spec;
  spec.target_nodes = tc.nodes;
  spec.target_avg_deg = tc.avg_deg;
  spec.seed = tc.seed;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::by_name(tc.shape), spec);
  const net::Graph& g = sc.graph;
  const Params params;

  const DistributedRun dist = run_distributed_stages(g, params);

  // Stage 1: index data identical.
  const IndexData central = compute_index(g, params);
  EXPECT_EQ(dist.index.khop_size, central.khop_size);
  EXPECT_EQ(dist.index.centrality, central.centrality);
  EXPECT_EQ(dist.index.index, central.index);

  // Stage 1 decision: identical critical node set.
  EXPECT_EQ(dist.critical_nodes,
            identify_critical_nodes(g, central, params));

  // Stage 2: identical Voronoi structures, field by field.
  const VoronoiResult cv = build_voronoi(g, dist.critical_nodes, params);
  EXPECT_EQ(dist.voronoi.sites, cv.sites);
  EXPECT_EQ(dist.voronoi.site_of, cv.site_of);
  EXPECT_EQ(dist.voronoi.dist, cv.dist);
  EXPECT_EQ(dist.voronoi.parent, cv.parent);
  EXPECT_EQ(dist.voronoi.site2_of, cv.site2_of);
  EXPECT_EQ(dist.voronoi.dist2, cv.dist2);
  EXPECT_EQ(dist.voronoi.via2, cv.via2);
  EXPECT_EQ(dist.voronoi.is_segment, cv.is_segment);
  EXPECT_EQ(dist.voronoi.is_voronoi_node, cv.is_voronoi_node);
  EXPECT_EQ(dist.voronoi.nearby, cv.nearby);
}

INSTANTIATE_TEST_SUITE_P(
    Networks, ProtocolEquivalenceTest,
    ::testing::Values(EquivalenceCase{"window", 800, 7.0, 1},
                      EquivalenceCase{"star", 700, 7.0, 2},
                      EquivalenceCase{"two_holes", 800, 8.0, 3},
                      EquivalenceCase{"disk", 600, 9.0, 4},
                      EquivalenceCase{"lshape", 600, 6.5, 5}),
    [](const auto& info) {
      return info.param.shape + "_s" + std::to_string(info.param.seed);
    });

TEST(Protocols, KhopFloodMessageBound) {
  // Theorem 5: the k-hop flood costs at most (k) transmissions per node
  // origin... each node forwards each origin's message at most once, and
  // each origin's flood reaches at most its k-hop ball, so the total is
  // bounded by sum over v of |N_k(v)| retransmissions + n initial sends.
  deploy::ScenarioSpec spec;
  spec.target_nodes = 500;
  spec.target_avg_deg = 8.0;
  spec.seed = 9;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::disk(), spec);
  const net::Graph& g = sc.graph;
  sim::Engine engine(g);
  KhopSizeProtocol khop(g.n(), 4);
  const sim::RunStats stats = engine.run(khop);
  long long ball_sum = 0;
  for (int s : khop.sizes()) ball_sum += s;
  EXPECT_LE(stats.transmissions, ball_sum + g.n());
  // Rounds: the wave of hop-counter k dies after k + 1 rounds.
  EXPECT_LE(stats.rounds, 4 + 1);
}

TEST(Protocols, KhopSizesAgreeForDifferentK) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 300;
  spec.target_avg_deg = 8.0;
  spec.seed = 10;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::rect(), spec);
  for (int k : {1, 2, 3, 6}) {
    sim::Engine engine(sc.graph);
    KhopSizeProtocol p(sc.graph.n(), k);
    engine.run(p);
    EXPECT_EQ(p.sizes(), net::khop_sizes(sc.graph, k)) << "k=" << k;
  }
}

TEST(Protocols, VoronoiRoundsBoundedByEccentricity) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 500;
  spec.target_avg_deg = 8.0;
  spec.seed = 11;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::corridor(), spec);
  const net::Graph& g = sc.graph;
  const Params params;
  const DistributedRun run = run_distributed_stages(g, params);
  // The Voronoi flood finishes within max-dist-to-nearest-site + O(1)
  // rounds (each wavefront advances one hop per round).
  int max_dist = 0;
  for (int d : run.voronoi.dist) max_dist = std::max(max_dist, d);
  EXPECT_LE(run.voronoi_stats.rounds, max_dist + 2);
  // Each node transmits exactly once in the Voronoi flood.
  EXPECT_EQ(run.voronoi_stats.transmissions, g.n());
}

TEST(Protocols, ZeroTtlProtocolsAreSilent) {
  net::Graph g(5);
  for (int i = 0; i < 4; ++i) g.add_edge(i, i + 1);
  sim::Engine engine(g);
  KhopSizeProtocol khop(5, 0);
  const sim::RunStats s = engine.run(khop);
  EXPECT_EQ(s.transmissions, 0);
  EXPECT_EQ(khop.sizes(), (std::vector<int>{0, 0, 0, 0, 0}));
  CentralityProtocol cent({1, 2, 3, 2, 1}, 0, false);
  engine.run(cent);
  // Falls back to own size when nothing is heard.
  EXPECT_EQ(cent.centrality(), (std::vector<double>{1, 2, 3, 2, 1}));
}

TEST(Protocols, LocalMaxValidation) {
  EXPECT_THROW(LocalMaxProtocol({1.0, 2.0}, 0), std::invalid_argument);
  EXPECT_THROW(KhopSizeProtocol(5, -1), std::invalid_argument);
  EXPECT_THROW(VoronoiProtocol(5, {0}, -1), std::invalid_argument);
  EXPECT_THROW(VoronoiProtocol(5, {7}, 1), std::out_of_range);
}

}  // namespace
}  // namespace skelex::core
