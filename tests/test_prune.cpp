#include "core/prune.h"

#include <gtest/gtest.h>

namespace skelex::core {
namespace {

// Y-shape: junction at 3 with arms 0-1-2-3 (long), 3-4 (short), 3-5-6.
SkeletonGraph y_shape() {
  SkeletonGraph sk(7);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 3);
  sk.add_edge(3, 4);
  sk.add_edge(3, 5);
  sk.add_edge(5, 6);
  return sk;
}

TEST(Prune, RemovesShortBranchKeepsLong) {
  SkeletonGraph sk = y_shape();
  const int removed = prune_short_branches(sk, 2);
  // Branch {4} has length 1 < 2: removed. Branches {0,1,2} (3) and {6,5}
  // (2) survive.
  EXPECT_EQ(removed, 1);
  EXPECT_FALSE(sk.has_node(4));
  EXPECT_TRUE(sk.has_node(0));
  EXPECT_TRUE(sk.has_node(6));
  EXPECT_EQ(sk.node_count(), 6);
}

TEST(Prune, LargerThresholdEatsMore) {
  SkeletonGraph sk = y_shape();
  prune_short_branches(sk, 3);
  // {4} and {6,5} go; after they go, 3 has degree 1 and joins the long
  // chain, which is now a bare path -> kept.
  EXPECT_FALSE(sk.has_node(4));
  EXPECT_FALSE(sk.has_node(5));
  EXPECT_FALSE(sk.has_node(6));
  EXPECT_TRUE(sk.has_node(0));
  EXPECT_TRUE(sk.has_node(3));
  EXPECT_EQ(sk.node_count(), 4);
}

TEST(Prune, BarePathComponentIsNeverDeleted) {
  SkeletonGraph sk(4);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  EXPECT_EQ(prune_short_branches(sk, 100), 0);
  EXPECT_EQ(sk.node_count(), 3);
}

TEST(Prune, LoopsAreUntouched) {
  SkeletonGraph sk(8);
  // Square 0-1-2-3 with a short tail 3-4.
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 3);
  sk.add_edge(3, 0);
  sk.add_edge(3, 4);
  prune_short_branches(sk, 3);
  EXPECT_FALSE(sk.has_node(4));
  EXPECT_EQ(sk.node_count(), 4);
  EXPECT_EQ(sk.cycle_rank(), 1);
}

TEST(Prune, ZeroThresholdIsANoOp) {
  SkeletonGraph sk = y_shape();
  EXPECT_EQ(prune_short_branches(sk, 0), 0);
  EXPECT_EQ(sk.node_count(), 7);
  EXPECT_THROW(prune_short_branches(sk, -1), std::invalid_argument);
}

TEST(Prune, CascadingBranches) {
  // A comb: spine 0-1-2-3-4 with teeth 5,6,7 on nodes 1,2,3.
  SkeletonGraph sk(8);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 3);
  sk.add_edge(3, 4);
  sk.add_edge(1, 5);
  sk.add_edge(2, 6);
  sk.add_edge(3, 7);
  prune_short_branches(sk, 2);
  EXPECT_FALSE(sk.has_node(5));
  EXPECT_FALSE(sk.has_node(6));
  EXPECT_FALSE(sk.has_node(7));
  // The spine's end stubs {0} and {4} are themselves length-1 leaf
  // branches off junctions 1 and 3, so they go too; what remains is the
  // junction core 1-2-3 as a bare path.
  EXPECT_FALSE(sk.has_node(0));
  EXPECT_FALSE(sk.has_node(4));
  EXPECT_EQ(sk.node_count(), 3);
}

TEST(Prune, IsolatedNodesAreNotBranches) {
  // Pruning trims leaf branches only; isolated nodes are someone else's
  // decision (the pipeline removes them when their network component has
  // other skeleton structure).
  SkeletonGraph sk(5);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_node(4);  // isolated
  prune_short_branches(sk, 1);
  EXPECT_TRUE(sk.has_node(4));
  EXPECT_EQ(sk.node_count(), 4);
}

TEST(Prune, SingleIsolatedNodeKept) {
  // A skeleton that is just one site must not vanish.
  SkeletonGraph sk(3);
  sk.add_node(1);
  prune_short_branches(sk, 5);
  EXPECT_TRUE(sk.has_node(1));
}

}  // namespace
}  // namespace skelex::core
