#include "radio/radio_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "deploy/rng.h"

namespace skelex::radio {
namespace {

using geom::Vec2;

TEST(UnitDisk, ThresholdBehavior) {
  UnitDiskModel m(2.0);
  deploy::Rng rng(1);
  EXPECT_TRUE(m.link({0, 0}, {2, 0}, rng));    // exactly at range
  EXPECT_TRUE(m.link({0, 0}, {1.9, 0}, rng));
  EXPECT_FALSE(m.link({0, 0}, {2.01, 0}, rng));
  EXPECT_DOUBLE_EQ(m.max_range(), 2.0);
  EXPECT_EQ(m.name(), "UDG");
  EXPECT_THROW(UnitDiskModel(0.0), std::invalid_argument);
}

TEST(QuasiUnitDisk, DeterministicZones) {
  QuasiUnitDiskModel m(10.0, 0.4, 0.3);
  deploy::Rng rng(1);
  // Below (1-alpha) R = 6: always linked.
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(m.link({0, 0}, {5.9, 0}, rng));
  // Above (1+alpha) R = 14: never linked.
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(m.link({0, 0}, {14.1, 0}, rng));
  EXPECT_DOUBLE_EQ(m.max_range(), 14.0);
}

TEST(QuasiUnitDisk, BandProbabilityApproximatelyP) {
  QuasiUnitDiskModel m(10.0, 0.4, 0.3);
  deploy::Rng rng(2);
  int links = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (m.link({0, 0}, {10.0, 0}, rng)) ++links;
  }
  EXPECT_NEAR(links / static_cast<double>(n), 0.3, 0.02);
}

TEST(QuasiUnitDisk, Validation) {
  EXPECT_THROW(QuasiUnitDiskModel(10, -0.1, 0.3), std::invalid_argument);
  EXPECT_THROW(QuasiUnitDiskModel(10, 1.0, 0.3), std::invalid_argument);
  EXPECT_THROW(QuasiUnitDiskModel(10, 0.4, 0.0), std::invalid_argument);
  EXPECT_THROW(QuasiUnitDiskModel(10, 0.4, 1.0), std::invalid_argument);
}

TEST(LogNormal, XiZeroDegeneratesToUdg) {
  LogNormalModel m(10.0, 0.0);
  EXPECT_DOUBLE_EQ(m.link_probability(0.5), 1.0);
  EXPECT_DOUBLE_EQ(m.link_probability(1.0), 0.5);
  EXPECT_DOUBLE_EQ(m.link_probability(1.5), 0.0);
}

TEST(LogNormal, ProbabilityShape) {
  LogNormalModel m(10.0, 2.0);
  // Eq. (2): p(1) = 1/2 exactly (log 1 = 0).
  EXPECT_NEAR(m.link_probability(1.0), 0.5, 1e-12);
  // Monotone decreasing in distance.
  double prev = 1.0;
  for (double r = 0.2; r <= 3.0; r += 0.2) {
    const double p = m.link_probability(r);
    EXPECT_LE(p, prev + 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  // Long links have nonzero probability (the model's defining feature).
  EXPECT_GT(m.link_probability(1.5), 0.0);
  // Short links can fail: probability < 1 below normalized distance 1.
  EXPECT_LT(m.link_probability(0.9), 1.0);
}

TEST(LogNormal, LargerXiMoreLongLinks) {
  LogNormalModel a(10.0, 1.0), b(10.0, 3.0);
  EXPECT_LT(a.link_probability(1.5), b.link_probability(1.5));
  EXPECT_GT(a.link_probability(0.7), b.link_probability(0.7));
}

TEST(LogNormal, CutoffTruncates) {
  LogNormalModel m(10.0, 2.0, 2.0);
  deploy::Rng rng(1);
  EXPECT_DOUBLE_EQ(m.max_range(), 20.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(m.link({0, 0}, {20.5, 0}, rng));
  }
}

TEST(LogNormal, Validation) {
  EXPECT_THROW(LogNormalModel(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormalModel(10.0, -1.0), std::invalid_argument);
  EXPECT_THROW(LogNormalModel(10.0, 1.0, 0.5), std::invalid_argument);
}

TEST(Factories, ProduceWorkingModels) {
  deploy::Rng rng(1);
  EXPECT_TRUE(make_udg(5.0)->link({0, 0}, {4, 0}, rng));
  EXPECT_EQ(make_qudg(5.0, 0.2, 0.5)->name(), "QUDG");
  EXPECT_EQ(make_lognormal(5.0, 1.0)->name(), "LogNormal");
}

}  // namespace
}  // namespace skelex::radio
