// End-to-end robustness under non-UDG radio models — Fig. 6 (QUDG) and
// Fig. 7 (log-normal) as a test suite. The paper's claim: results stay
// correct, just rougher.
#include <gtest/gtest.h>

#include <string>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/medial_axis_ref.h"
#include "geometry/shapes.h"
#include "metrics/homotopy.h"
#include "metrics/quality.h"
#include "radio/radio_model.h"

namespace skelex {
namespace {

struct RadioCase {
  std::string name;
  std::string shape;
  int nodes;
  double nominal_deg;
  // 0 = QUDG(0.4, 0.3); otherwise log-normal with this xi.
  double xi;
  std::uint64_t seed;
};

class RadioPipelineTest : public ::testing::TestWithParam<RadioCase> {};

TEST_P(RadioPipelineTest, TopologySurvivesTheRadioModel) {
  const RadioCase& tc = GetParam();
  const geom::Region region = geom::shapes::by_name(tc.shape);
  deploy::ScenarioSpec spec;
  spec.target_nodes = tc.nodes;
  spec.target_avg_deg = tc.nominal_deg;
  spec.seed = tc.seed;
  const double nominal =
      deploy::range_for_target_degree(region, tc.nodes, tc.nominal_deg);

  deploy::Scenario sc =
      tc.xi == 0.0
          ? deploy::make_scenario(region, spec,
                                  radio::QuasiUnitDiskModel(nominal, 0.4, 0.3))
          : deploy::make_scenario(region, spec,
                                  radio::LogNormalModel(nominal, tc.xi));
  const net::Graph& g = sc.graph;
  ASSERT_GT(g.n(), tc.nodes * 3 / 4) << "deployment fragmented";

  const core::SkeletonResult r = core::extract_skeleton(g, core::Params{});
  EXPECT_EQ(r.skeleton.component_count(), 1);
  const metrics::HomotopyCheck hom = metrics::check_homotopy(g, r.skeleton, region);
  EXPECT_TRUE(hom.ok) << tc.name << ": cycles " << hom.skeleton_cycles
                      << " vs holes " << hom.region_holes;

  // Rougher is allowed; nonsense is not. Normalize by the MEAN LINK
  // LENGTH rather than the nominal range: the log-normal model admits
  // links up to 3x nominal, which stretches every hop-derived position.
  double link_len_sum = 0.0;
  long long links = 0;
  for (int v = 0; v < g.n(); ++v) {
    for (int w : g.neighbors(v)) {
      if (w > v) {
        link_len_sum += geom::dist(g.position(v), g.position(w));
        ++links;
      }
    }
  }
  const double mean_link = link_len_sum / static_cast<double>(links);
  const geom::ReferenceMedialAxis axis(region);
  const metrics::Medialness med = metrics::medialness(g, r.skeleton, axis);
  EXPECT_LT(med.mean, 3.5 * mean_link) << tc.name << " " << med;
}

INSTANTIATE_TEST_SUITE_P(
    Models, RadioPipelineTest,
    ::testing::Values(
        RadioCase{"qudg_window", "window", 2592, 10.0, 0.0, 11},
        RadioCase{"qudg_two_holes", "two_holes", 2600, 10.0, 0.0, 12},
        RadioCase{"lognormal1_window", "window", 2592, 7.0, 1.0, 13},
        RadioCase{"lognormal2_window", "window", 2592, 7.0, 2.0, 13},
        RadioCase{"lognormal3_annulus", "annulus", 1800, 7.0, 3.0, 14}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace skelex
