// ReliableFloodWrapper: under reception loss the wrapped protocols must
// produce BITWISE-identical per-node results to the lossless run (which
// the protocol equivalence tests pin to the centralized algorithms), and
// under crash-stop failures the survivors must give up on the dead and
// terminate instead of wedging.
#include "core/reliable.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/identify.h"
#include "core/index.h"
#include "core/voronoi.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/graph.h"
#include "net/khop.h"
#include "sim/engine.h"
#include "sim/faults.h"

namespace skelex::core {
namespace {

net::Graph path_graph(int n) {
  net::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

struct LossyCase {
  std::string shape;
  int nodes;
  double avg_deg;
  double loss;
  std::uint64_t seed;
};

class ReliableEquivalenceTest : public ::testing::TestWithParam<LossyCase> {};

TEST_P(ReliableEquivalenceTest, LossyRunMatchesCentralizedBitwise) {
  const LossyCase& tc = GetParam();
  deploy::ScenarioSpec spec;
  spec.target_nodes = tc.nodes;
  spec.target_avg_deg = tc.avg_deg;
  spec.seed = tc.seed;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::by_name(tc.shape), spec);
  const net::Graph& g = sc.graph;
  const Params params;

  sim::Engine engine(g);
  engine.set_loss(tc.loss, tc.seed * 7919 + 1);
  const ReliableRun rel = run_distributed_stages_reliable(g, params, engine);
  const DistributedRun& dist = rel.run;

  // Every node finished every logical round of every stage.
  EXPECT_EQ(rel.total_rel().stalled_nodes, 0);
  EXPECT_FALSE(dist.total().hit_round_cap);
  // Loss really happened and the wrapper really recovered from it.
  EXPECT_GT(rel.total_rel().retransmissions, 0);

  // Stage 1: index data identical to the centralized computation.
  const IndexData central = compute_index(g, params);
  EXPECT_EQ(dist.index.khop_size, central.khop_size);
  EXPECT_EQ(dist.index.centrality, central.centrality);
  EXPECT_EQ(dist.index.index, central.index);

  // Stage 1 decision: identical critical node set.
  EXPECT_EQ(dist.critical_nodes, identify_critical_nodes(g, central, params));

  // Stage 2: identical Voronoi structures, field by field.
  const VoronoiResult cv = build_voronoi(g, dist.critical_nodes, params);
  EXPECT_EQ(dist.voronoi.sites, cv.sites);
  EXPECT_EQ(dist.voronoi.site_of, cv.site_of);
  EXPECT_EQ(dist.voronoi.dist, cv.dist);
  EXPECT_EQ(dist.voronoi.parent, cv.parent);
  EXPECT_EQ(dist.voronoi.site2_of, cv.site2_of);
  EXPECT_EQ(dist.voronoi.dist2, cv.dist2);
  EXPECT_EQ(dist.voronoi.via2, cv.via2);
  EXPECT_EQ(dist.voronoi.is_segment, cv.is_segment);
  EXPECT_EQ(dist.voronoi.is_voronoi_node, cv.is_voronoi_node);
  EXPECT_EQ(dist.voronoi.nearby, cv.nearby);
}

INSTANTIATE_TEST_SUITE_P(
    Networks, ReliableEquivalenceTest,
    ::testing::Values(LossyCase{"window", 700, 7.5, 0.2, 21},
                      LossyCase{"star_hole", 700, 7.5, 0.2, 22},
                      LossyCase{"window", 400, 7.0, 0.3, 23}),
    [](const auto& info) {
      return info.param.shape + "_p" +
             std::to_string(static_cast<int>(info.param.loss * 100)) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(Reliable, FullExtractionUnderLossMatchesLossless) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 600;
  spec.target_avg_deg = 7.5;
  spec.seed = 31;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::window(), spec);
  const net::Graph& g = sc.graph;

  const SkeletonResult lossless = extract_skeleton(g, Params{});
  sim::Engine engine(g);
  engine.set_loss(0.2, 77);
  const ReliableExtraction lossy = extract_skeleton_reliable(g, Params{}, engine);
  const SkeletonResult& r = lossy.result;

  // Identical stage-1/2 data makes the rest of the pipeline identical.
  EXPECT_EQ(r.critical_nodes, lossless.critical_nodes);
  EXPECT_EQ(r.voronoi().site_of, lossless.voronoi().site_of);
  EXPECT_EQ(r.skeleton.nodes(), lossless.skeleton.nodes());
  EXPECT_EQ(r.skeleton.edge_count(), lossless.skeleton.edge_count());
  EXPECT_EQ(r.skeleton_cycle_rank(), lossless.skeleton_cycle_rank());
  EXPECT_EQ(r.skeleton_components(), lossless.skeleton_components());
  // A clean (if lossy) run on a connected network degrades nothing.
  EXPECT_TRUE(r.diagnostics.ok()) << r.diagnostics.warnings.front();
  EXPECT_EQ(lossy.reliability.stalled_nodes, 0);
}

TEST(Reliable, SingleProtocolUnderLossMatchesKhopSizes) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 300;
  spec.target_avg_deg = 8.0;
  spec.seed = 12;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::rect(), spec);
  const net::Graph& g = sc.graph;
  for (double loss : {0.1, 0.25}) {
    sim::Engine engine(g);
    engine.set_loss(loss, 5);
    KhopSizeProtocol khop(g.n(), 3);
    ReliableOptions opts;
    opts.max_logical_rounds = 3;
    ReliableFloodWrapper wrapper(khop, g, opts);
    engine.run(wrapper);
    EXPECT_TRUE(wrapper.complete()) << "loss=" << loss;
    EXPECT_EQ(khop.sizes(), net::khop_sizes(g, 3)) << "loss=" << loss;
  }
}

TEST(Reliable, CrashedNeighborIsGivenUpOnAndSurvivorsFinish) {
  const net::Graph g = path_graph(5);
  sim::Engine engine(g);
  sim::FaultPlan plan;
  plan.crash_at(2, 0);
  engine.set_faults(plan);

  KhopSizeProtocol khop(5, 2);
  ReliableOptions opts;
  opts.max_logical_rounds = 2;
  opts.max_retries = 3;
  opts.initial_backoff = 1;
  opts.max_backoff = 2;
  opts.watchdog_rounds = 8;
  ReliableFloodWrapper wrapper(khop, g, opts);
  const sim::RunStats s = engine.run(wrapper, /*max_rounds=*/4000);

  // The run terminated by quiescence, not by the cap.
  EXPECT_FALSE(s.hit_round_cap);
  const ReliableStats rs = wrapper.stats();
  // Nodes 1 and 3 each abandoned packets addressed to the crashed node.
  EXPECT_GT(rs.gave_up_links, 0);
  // Exactly the crashed node never completed.
  EXPECT_EQ(rs.stalled_nodes, 1);
  // Survivors learned exactly the neighborhoods of the severed path:
  // components {0, 1} and {3, 4}.
  EXPECT_EQ(khop.sizes(), (std::vector<int>{1, 1, 0, 1, 1}));
}

TEST(Reliable, ZeroRoundsIsSilent) {
  const net::Graph g = path_graph(4);
  sim::Engine engine(g);
  KhopSizeProtocol khop(4, 0);
  ReliableOptions opts;
  opts.max_logical_rounds = 0;
  ReliableFloodWrapper wrapper(khop, g, opts);
  const sim::RunStats s = engine.run(wrapper);
  EXPECT_EQ(s.transmissions, 0);
  EXPECT_TRUE(wrapper.complete());
  EXPECT_EQ(wrapper.stats().stalled_nodes, 0);
}

TEST(Reliable, OptionValidation) {
  const net::Graph g = path_graph(2);
  KhopSizeProtocol khop(2, 1);
  ReliableOptions bad;
  bad.max_logical_rounds = -1;
  EXPECT_THROW(ReliableFloodWrapper(khop, g, bad), std::invalid_argument);
  bad = ReliableOptions{};
  bad.initial_backoff = 0;
  EXPECT_THROW(ReliableFloodWrapper(khop, g, bad), std::invalid_argument);
  bad = ReliableOptions{};
  bad.max_backoff = 1;  // < initial_backoff (2)
  EXPECT_THROW(ReliableFloodWrapper(khop, g, bad), std::invalid_argument);
}

}  // namespace
}  // namespace skelex::core
