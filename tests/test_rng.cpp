#include "deploy/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace skelex::deploy {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = r.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.1);  // mean of U(-3, 5)
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng r(9);
  std::vector<int> hist(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = r.next_below(10);
    ASSERT_LT(v, 10u);
    ++hist[static_cast<std::size_t>(v)];
  }
  for (int h : hist) {
    EXPECT_NEAR(h, n / 10, n / 50);  // 2% absolute slack per bucket
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  // The split stream is deterministic...
  Rng a2(5);
  Rng b2 = a2.split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(b.next_u64(), b2.next_u64());
  }
  // ...and differs from the parent's continued output.
  std::set<std::uint64_t> parent;
  for (int i = 0; i < 64; ++i) parent.insert(a.next_u64());
  Rng b3 = Rng(5).split();
  int overlap = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.count(b3.next_u64())) ++overlap;
  }
  EXPECT_LT(overlap, 2);
}

}  // namespace
}  // namespace skelex::deploy
