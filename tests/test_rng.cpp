#include "deploy/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace skelex::deploy {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Rng r(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = r.uniform(-3.0, 5.0);
    EXPECT_GE(d, -3.0);
    EXPECT_LT(d, 5.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.1);  // mean of U(-3, 5)
}

TEST(Rng, NextBelowInRangeAndRoughlyUniform) {
  Rng r(9);
  std::vector<int> hist(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = r.next_below(10);
    ASSERT_LT(v, 10u);
    ++hist[static_cast<std::size_t>(v)];
  }
  for (int h : hist) {
    EXPECT_NEAR(h, n / 10, n / 50);  // 2% absolute slack per bucket
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, GaussianMoments) {
  Rng r(11);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  // The split stream is deterministic...
  Rng a2(5);
  Rng b2 = a2.split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(b.next_u64(), b2.next_u64());
  }
  // ...and differs from the parent's continued output.
  std::set<std::uint64_t> parent;
  for (int i = 0; i < 64; ++i) parent.insert(a.next_u64());
  Rng b3 = Rng(5).split();
  int overlap = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.count(b3.next_u64())) ++overlap;
  }
  EXPECT_LT(overlap, 2);
}

TEST(CounterRng, PrefixTailSplitMatchesFullHash) {
  const std::uint64_t seeds[] = {0, 1, 42, 0x9e3779b97f4a7c15ULL,
                                 ~std::uint64_t{0}};
  const std::uint64_t keys[] = {0, 1, 7, 0xffffffffULL, 0x123456789abcdefULL,
                                ~std::uint64_t{0}};
  for (std::uint64_t seed : seeds) {
    for (std::uint64_t k0 : keys) {
      const std::uint64_t prefix = counter_prefix(seed, k0);
      for (std::uint64_t k1 : keys) {
        EXPECT_EQ(counter_hash_tail(prefix, k1), counter_hash(seed, k0, k1));
        EXPECT_EQ(counter_uniform_tail(prefix, k1),
                  counter_uniform(seed, k0, k1));
      }
    }
  }
}

TEST(CounterRng, BatchMatchesScalarDraws) {
  // The engine's loss-key shape: k0 = (round, sender), k1 packs the
  // emission index in the high word and receiver + 1 in the low word.
  const std::uint64_t seed = 0xfeedface12345678ULL;
  const std::uint64_t k0 = (std::uint64_t{3} << 32) | 17u;
  const std::uint64_t base_k1 = std::uint64_t{5} << 32;
  std::vector<int> ids = {0, 1, 2, 99, 70000, 12, 5, 1 << 20};
  std::vector<double> out(ids.size(), -1.0);
  counter_uniform_batch(counter_prefix(seed, k0), base_k1, ids.data(),
                        static_cast<int>(ids.size()), out.data());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint64_t k1 =
        base_k1 | static_cast<std::uint32_t>(ids[i] + 1);
    EXPECT_EQ(out[i], counter_uniform(seed, k0, k1)) << "i=" << i;
  }
  // Empty batch is a no-op.
  counter_uniform_batch(counter_prefix(seed, k0), base_k1, ids.data(), 0,
                        out.data());
}

}  // namespace
}  // namespace skelex::deploy
