// sim::RunStats accounting: operator+= / operator+ sum every counter,
// total_fault_drops aggregates the four fault columns, operator<< stays
// compact (fault block only when something was dropped), and summing
// stats concatenates round series on one continuous clock.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/stats.h"

namespace {

using namespace skelex;

sim::RunStats make_stats(int rounds, long long tx, long long rx) {
  sim::RunStats s;
  s.rounds = rounds;
  s.transmissions = tx;
  s.receptions = rx;
  return s;
}

TEST(RunStats, PlusEqualsSumsEveryCounter) {
  sim::RunStats a = make_stats(3, 100, 700);
  a.faults_tx_suppressed = 1;
  a.faults_rx_crashed = 2;
  a.faults_rx_sleeping = 3;
  a.faults_rx_linkdown = 4;

  sim::RunStats b = make_stats(5, 11, 77);
  b.faults_tx_suppressed = 10;
  b.faults_rx_crashed = 20;
  b.faults_rx_sleeping = 30;
  b.faults_rx_linkdown = 40;
  b.hit_round_cap = true;

  a += b;
  EXPECT_EQ(a.rounds, 8);
  EXPECT_EQ(a.transmissions, 111);
  EXPECT_EQ(a.receptions, 777);
  EXPECT_EQ(a.faults_tx_suppressed, 11);
  EXPECT_EQ(a.faults_rx_crashed, 22);
  EXPECT_EQ(a.faults_rx_sleeping, 33);
  EXPECT_EQ(a.faults_rx_linkdown, 44);
  EXPECT_TRUE(a.hit_round_cap);
}

TEST(RunStats, PlusIsNonMutatingSum) {
  const sim::RunStats a = make_stats(2, 10, 20);
  const sim::RunStats b = make_stats(3, 1, 2);
  const sim::RunStats c = a + b;
  EXPECT_EQ(c.rounds, 5);
  EXPECT_EQ(c.transmissions, 11);
  EXPECT_EQ(c.receptions, 22);
  // Operands unchanged.
  EXPECT_EQ(a.rounds, 2);
  EXPECT_EQ(b.transmissions, 1);
}

TEST(RunStats, HitRoundCapIsSticky) {
  sim::RunStats capped;
  capped.hit_round_cap = true;
  sim::RunStats clean;
  EXPECT_TRUE((capped + clean).hit_round_cap);
  EXPECT_TRUE((clean + capped).hit_round_cap);
  EXPECT_FALSE((clean + clean).hit_round_cap);
}

TEST(RunStats, TotalFaultDropsAggregatesAllFourColumns) {
  sim::RunStats s;
  EXPECT_EQ(s.total_fault_drops(), 0);
  s.faults_tx_suppressed = 1;
  s.faults_rx_crashed = 10;
  s.faults_rx_sleeping = 100;
  s.faults_rx_linkdown = 1000;
  EXPECT_EQ(s.total_fault_drops(), 1111);
}

TEST(RunStats, StreamOutputOmitsFaultsWhenClean) {
  const sim::RunStats s = make_stats(4, 9, 18);
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "{rounds=4, tx=9, rx=18}");
}

TEST(RunStats, StreamOutputShowsFaultsAndCap) {
  sim::RunStats s = make_stats(1, 2, 3);
  s.faults_rx_linkdown = 7;
  s.hit_round_cap = true;
  std::ostringstream os;
  os << s;
  const std::string out = os.str();
  EXPECT_NE(out.find("rx_linkdown=7"), std::string::npos);
  EXPECT_NE(out.find("hit_round_cap"), std::string::npos);
}

TEST(RunStats, SumConcatenatesSeriesOnOneClock) {
  sim::RunStats a = make_stats(3, 0, 0);
  a.series.ensure(0).transmissions = 5;
  a.series.ensure(2).transmissions = 7;

  sim::RunStats b = make_stats(2, 0, 0);
  b.series.ensure(1).transmissions = 9;
  b.series.ensure(1).retransmissions = 4;

  const sim::RunStats c = a + b;
  // a's 3 rounds shift b's samples by 3: rounds 0,1,2 then 3,4.
  ASSERT_EQ(c.series.size(), 5u);
  EXPECT_EQ(c.series.samples()[0].round, 0);
  EXPECT_EQ(c.series.samples()[0].transmissions, 5);
  EXPECT_EQ(c.series.samples()[2].transmissions, 7);
  EXPECT_EQ(c.series.samples()[3].round, 3);  // b's round 0, shifted
  EXPECT_EQ(c.series.samples()[4].round, 4);
  EXPECT_EQ(c.series.samples()[4].transmissions, 9);
  EXPECT_EQ(c.series.samples()[4].retransmissions, 4);
  EXPECT_EQ(c.series.total_transmissions(), 21);
  EXPECT_EQ(c.series.total_retransmissions(), 4);
}

}  // namespace
