// The extraction service end to end: wire protocol roundtrips, the
// loopback server under concurrent pipelined load (the acceptance bar:
// >= 64 requests in flight at once with zero invariant violations), and
// clean shutdown semantics.
#include "svc/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "svc/protocol.h"
#include "svc/service.h"

namespace skelex::svc {
namespace {

// --- protocol ---------------------------------------------------------------

TEST(Protocol, RequestFormatParsesBackIdentically) {
  Request r;
  r.cmd = "extract";
  r.id = 42;
  r.shape = "flower";
  r.nodes = 1234;
  r.avg_deg = 6.125;
  r.seed = 99;
  r.radio = "qudg:0.4:0.3";
  r.with_trace = false;
  r.params.k = 5;
  r.params.prune_len = 9;
  r.params.hole_khop_ratio = 0.6543210987654321;

  const Request back = parse_request(format_request(r));
  EXPECT_EQ(back.cmd, r.cmd);
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.shape, r.shape);
  EXPECT_EQ(back.nodes, r.nodes);
  EXPECT_EQ(back.avg_deg, r.avg_deg);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.radio, r.radio);
  EXPECT_EQ(back.with_trace, r.with_trace);
  EXPECT_EQ(back.params.k, r.params.k);
  EXPECT_EQ(back.params.prune_len, r.params.prune_len);
  EXPECT_EQ(back.params.hole_khop_ratio, r.params.hole_khop_ratio);
}

TEST(Protocol, UnknownKeysAndBadNumbersThrow) {
  EXPECT_THROW(parse_request("cmd=extract\nprunelen=9\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_request("cmd=fly\n"), std::invalid_argument);
  EXPECT_THROW(parse_request("nodes=abc\n"), std::invalid_argument);
  EXPECT_THROW(parse_request("no equals sign"), std::invalid_argument);
}

// --- service (no sockets) ----------------------------------------------------

TEST(Service, MalformedRequestYieldsErrorResponseNotThrow) {
  ExtractionService service;
  const std::string resp = service.handle("cmd=extract\nbogus_key=1\n");
  EXPECT_NE(resp.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(resp.find("bogus_key"), std::string::npos);
}

TEST(Service, UnknownShapeYieldsErrorResponse) {
  ExtractionService service;
  Request req;
  req.shape = "definitely-not-a-shape";
  const std::string resp = service.handle(req);
  EXPECT_NE(resp.find("\"ok\": false"), std::string::npos);
}

TEST(Service, WarmResponseByteIdenticalModuloMillis) {
  ExtractionService service;
  Request req;
  req.nodes = 500;
  req.seed = 11;
  req.with_trace = false;  // without trace there is no millis field at all
  const std::string cold = service.handle(req);
  const std::string warm = service.handle(req);
  EXPECT_EQ(cold, warm);
  EXPECT_NE(cold.find("\"ok\": true"), std::string::npos);
  EXPECT_GT(service.cache_stats().hits, 0);
}

// --- server ------------------------------------------------------------------

TEST(Server, SustainsConcurrentPipelinedLoad) {
  ExtractionService service;
  exec::ThreadPool pool(4);
  Server server(service, pool);
  ASSERT_GT(server.port(), 0);

  // Two connections, each pipelining half the batch without waiting for
  // responses — the reader threads submit everything to the pool, so
  // in-flight climbs to the full batch size.
  constexpr int kClients = 2;
  constexpr int kPerClient = 80;  // 160 total, acceptance bar is 64
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(server.port());
      for (int i = 0; i < kPerClient; ++i) {
        Request req;
        req.id = c * kPerClient + i;
        req.nodes = 400;
        req.seed = 1 + i % 8;            // several distinct graphs
        req.params.prune_len = 6 + i % 2;  // and param variants
        req.with_trace = false;
        if (!client.send(req)) {
          ++bad;
          return;
        }
      }
      std::set<long long> ids;
      std::string resp;
      for (int i = 0; i < kPerClient; ++i) {
        if (!client.recv(resp) ||
            resp.find("\"ok\": true") == std::string::npos) {
          ++bad;
          continue;
        }
        const std::size_t id_pos = resp.find("\"id\": ");
        ids.insert(std::stoll(resp.substr(id_pos + 6)));
      }
      // Every pipelined request got exactly one response (ids may
      // arrive out of order but none are lost or duplicated).
      if (static_cast<int>(ids.size()) != kPerClient) ++bad;
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(server.max_in_flight(), 64)
      << "load did not reach the concurrency bar";
  server.stop();
  EXPECT_EQ(server.in_flight(), 0) << "stop() must drain";
}

TEST(Server, ResponsesMatchDirectServiceCalls) {
  ExtractionService direct;  // reference responses, no sockets
  ExtractionService served;
  exec::ThreadPool pool(2);
  Server server(served, pool);
  Client client(server.port());

  for (int seed = 1; seed <= 3; ++seed) {
    Request req;
    req.id = seed;
    req.nodes = 450;
    req.seed = static_cast<std::uint64_t>(seed);
    req.with_trace = false;  // responses are then fully deterministic
    EXPECT_EQ(client.request(req), direct.handle(req));
  }
}

TEST(Server, ClientShutdownCommandStopsServeForever) {
  ExtractionService service;
  exec::ThreadPool pool(2);
  Server server(service, pool);
  std::thread daemon([&] { server.serve_forever(); });

  Client client(server.port());
  Request req;
  req.cmd = "shutdown";
  req.id = 1;
  const std::string resp = client.request(req);
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos);
  daemon.join();  // serve_forever returns: the shutdown drained cleanly
  EXPECT_EQ(server.in_flight(), 0);
}

TEST(Server, StopWithIdleConnectionsDoesNotHang) {
  ExtractionService service;
  exec::ThreadPool pool(2);
  Server server(service, pool);
  Client idle1(server.port());
  Client idle2(server.port());
  // Give the accept thread a moment to register both connections, then
  // stop() must nudge their blocked readers and return.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.stop();
  SUCCEED();
}

TEST(Server, StatsOverTheWire) {
  ExtractionService service;
  exec::ThreadPool pool(2);
  Server server(service, pool);
  Client client(server.port());

  Request extract;
  extract.id = 1;
  extract.nodes = 400;
  extract.with_trace = false;
  client.request(extract);
  client.request(extract);  // warm

  Request stats;
  stats.cmd = "stats";
  stats.id = 2;
  const std::string resp = client.request(stats);
  EXPECT_NE(resp.find("\"hits\": "), std::string::npos);
  EXPECT_EQ(resp.find("\"hits\": 0,"), std::string::npos)
      << "second extract should have produced cache hits: " << resp;
}

// --- live scenario sessions ---------------------------------------------------

TEST(Protocol, SessionFieldsRoundTrip) {
  Request r;
  r.cmd = "churn";
  r.id = 9;
  r.session_id = 7;
  r.canonical = true;
  r.churn_rounds = 12;
  r.join_rate = 0.25;
  r.leave_rate = 0.75;
  r.link_add_rate = 1.5;
  r.link_remove_rate = 0.125;
  r.churn_seed = 31337;
  r.repair_interval = 3;
  r.staleness_bound = 9;

  const Request back = parse_request(format_request(r));
  EXPECT_EQ(back.cmd, r.cmd);
  EXPECT_EQ(back.session_id, r.session_id);
  EXPECT_EQ(back.canonical, r.canonical);
  EXPECT_EQ(back.churn_rounds, r.churn_rounds);
  EXPECT_EQ(back.join_rate, r.join_rate);
  EXPECT_EQ(back.leave_rate, r.leave_rate);
  EXPECT_EQ(back.link_add_rate, r.link_add_rate);
  EXPECT_EQ(back.link_remove_rate, r.link_remove_rate);
  EXPECT_EQ(back.churn_seed, r.churn_seed);
  EXPECT_EQ(back.repair_interval, r.repair_interval);
  EXPECT_EQ(back.staleness_bound, r.staleness_bound);

  EXPECT_EQ(parse_request("cmd=session\n").cmd, "session");
  EXPECT_EQ(parse_request("cmd=close\nsession=3\n").session_id, 3);
}

TEST(Service, SessionLifecycleServesMaintainedSkeleton) {
  ExtractionService service;

  Request open;
  open.cmd = "session";
  open.id = 1;
  open.nodes = 400;
  open.seed = 3;
  const std::string opened = service.handle(open);
  EXPECT_NE(opened.find("\"ok\": true"), std::string::npos) << opened;
  EXPECT_NE(opened.find("\"session\": 1"), std::string::npos) << opened;
  EXPECT_NE(opened.find("\"healthy\": true"), std::string::npos) << opened;
  EXPECT_EQ(service.session_count(), 1u);

  Request churn;
  churn.cmd = "churn";
  churn.id = 2;
  churn.session_id = 1;
  churn.churn_rounds = 6;
  churn.churn_seed = 11;
  const std::string churned = service.handle(churn);
  EXPECT_NE(churned.find("\"ok\": true"), std::string::npos) << churned;
  EXPECT_NE(churned.find("\"rounds\": 6"), std::string::npos);
  EXPECT_NE(churned.find("\"script_digest\": \"0x"), std::string::npos);
  EXPECT_NE(churned.find("\"healthy\": true"), std::string::npos) << churned;

  // The served (maintained) skeleton passes the invariant checker and
  // is bit-identical to a from-scratch extraction of the live topology.
  Request ext;
  ext.cmd = "extract";
  ext.id = 3;
  ext.session_id = 1;
  ext.canonical = true;
  const std::string extracted = service.handle(ext);
  EXPECT_NE(extracted.find("\"ok\": true"), std::string::npos) << extracted;
  EXPECT_NE(extracted.find("\"invariants_ok\": true"), std::string::npos)
      << extracted;
  EXPECT_NE(extracted.find("\"matches_canonical\": true"), std::string::npos)
      << extracted;

  Request close;
  close.cmd = "close";
  close.id = 4;
  close.session_id = 1;
  const std::string closed = service.handle(close);
  EXPECT_NE(closed.find("\"closed\": true"), std::string::npos) << closed;
  EXPECT_NE(closed.find("\"rounds_total\": 6"), std::string::npos) << closed;
  EXPECT_EQ(service.session_count(), 0u);

  // The session is gone: further commands against it are errors.
  const std::string gone = service.handle(ext);
  EXPECT_NE(gone.find("\"ok\": false"), std::string::npos) << gone;
  EXPECT_NE(gone.find("unknown session"), std::string::npos) << gone;
}

TEST(Service, SessionResponsesDeterministicAcrossInstances) {
  // Same command sequence against two fresh services: byte-identical
  // responses (session ids are sequential, churn scripts are seeded, no
  // timing fields in session responses).
  const auto run = [](ExtractionService& service) {
    std::vector<std::string> out;
    Request open;
    open.cmd = "session";
    open.id = 1;
    open.nodes = 350;
    open.seed = 5;
    out.push_back(service.handle(open));
    Request churn;
    churn.cmd = "churn";
    churn.id = 2;
    churn.session_id = 1;
    churn.churn_rounds = 5;
    churn.churn_seed = 77;
    out.push_back(service.handle(churn));
    out.push_back(service.handle(churn));  // churn continues the session
    Request ext;
    ext.cmd = "extract";
    ext.id = 3;
    ext.session_id = 1;
    ext.canonical = true;
    out.push_back(service.handle(ext));
    return out;
  };
  ExtractionService a;
  ExtractionService b;
  const std::vector<std::string> ra = run(a);
  const std::vector<std::string> rb = run(b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i], rb[i]) << "response " << i;
  }
}

TEST(Service, MetricsExposeMaintainerTierCounters) {
  ExtractionService service;
  Request open;
  open.cmd = "session";
  open.id = 1;
  open.nodes = 350;
  open.seed = 5;
  ASSERT_NE(service.handle(open).find("\"ok\": true"), std::string::npos);
  Request churn;
  churn.cmd = "churn";
  churn.id = 2;
  churn.session_id = 1;
  churn.churn_rounds = 8;
  ASSERT_NE(service.handle(churn).find("\"ok\": true"), std::string::npos);

  Request metrics;
  metrics.cmd = "metrics";
  metrics.id = 3;
  const std::string resp = service.handle(metrics);
  EXPECT_NE(resp.find("maintain_repairs_"), std::string::npos) << resp;
  EXPECT_NE(resp.find("svc_sessions_opened_total"), std::string::npos);
  EXPECT_NE(resp.find("svc_session_churn_rounds_total"), std::string::npos);
}

// --- admission control --------------------------------------------------------

TEST(Server, OverloadedQueueRejectsWithBusy) {
  ExtractionService service;
  // Two real workers (a 1-thread pool runs submit() inline on the
  // reader, which can then never observe more than one in flight).
  exec::ThreadPool pool(2);
  Server::Options sopt;
  sopt.max_queue = 2;
  sopt.busy_retry_ms = 7;
  Server server(service, pool, 0, sopt);
  Client client(server.port());

  // Pipeline a burst of distinct (never-warm) extracts without reading a
  // single response: the reader must shed everything past the bound.
  constexpr int kBurst = 24;
  for (int i = 0; i < kBurst; ++i) {
    Request req;
    req.id = i + 1;
    req.nodes = 500;
    req.seed = static_cast<std::uint64_t>(100 + i);
    req.with_trace = false;
    ASSERT_TRUE(client.send(req));
  }
  int ok = 0, busy = 0;
  std::string resp;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(client.recv(resp)) << "response " << i;
    if (resp.find("\"error\": \"busy\"") != std::string::npos) {
      ++busy;
      EXPECT_NE(resp.find("\"retry_ms\": 7"), std::string::npos) << resp;
      EXPECT_NE(resp.find("\"ok\": false"), std::string::npos);
    } else {
      EXPECT_NE(resp.find("\"ok\": true"), std::string::npos) << resp;
      ++ok;
    }
  }
  EXPECT_EQ(ok + busy, kBurst);
  EXPECT_GT(busy, 0) << "burst never tripped admission control";
  EXPECT_GE(ok, 2) << "admitted requests must still be served";
  EXPECT_EQ(server.rejected(), busy);
  server.stop();
}

// PR-9 caveat, now enforced: with a single worker, submit() runs inline
// on the reader thread, so admission control could never trigger — the
// server must refuse that configuration at startup instead of shipping
// an unreachable rejection path.
TEST(Server, SingleWorkerWithAdmissionControlRefusedAtStartup) {
  ExtractionService service;
  exec::ThreadPool pool(1);
  Server::Options sopt;
  sopt.max_queue = 2;
  EXPECT_THROW(Server(service, pool, 0, sopt), std::invalid_argument);
}

// The escape hatch: a single worker is fine once the bound is disabled
// (max_queue <= 0 means "no admission control"), and the server still
// serves requests.
TEST(Server, SingleWorkerAllowedWithoutAdmissionControl) {
  ExtractionService service;
  exec::ThreadPool pool(1);
  Server::Options sopt;
  sopt.max_queue = 0;
  Server server(service, pool, 0, sopt);
  Client client(server.port());
  Request req;
  req.id = 1;
  req.nodes = 400;
  req.seed = 11;
  req.with_trace = false;
  const std::string resp = client.request(req);
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos) << resp;
  EXPECT_EQ(server.rejected(), 0);
  server.stop();
}

// --- serving-path observability ---------------------------------------------

TEST(Protocol, MetricsAndTraceCommandsParse) {
  EXPECT_EQ(parse_request("cmd=metrics\n").cmd, "metrics");
  const Request t = parse_request("cmd=trace\nlast=5\n");
  EXPECT_EQ(t.cmd, "trace");
  EXPECT_EQ(t.trace_last, 5);
  EXPECT_EQ(parse_request("cmd=trace\n").trace_last, 16);
}

TEST(Service, MetricsCommandReturnsExposition) {
  ExtractionService service;
  Request extract;
  extract.id = 1;
  extract.nodes = 300;
  extract.with_trace = false;
  ASSERT_NE(service.handle(extract).find("\"ok\": true"), std::string::npos);

  Request metrics;
  metrics.cmd = "metrics";
  metrics.id = 2;
  const std::string resp = service.handle(metrics);
  EXPECT_NE(resp.find("\"ok\": true"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"metrics\": ["), std::string::npos);
  EXPECT_NE(resp.find("\"exposition\": \""), std::string::npos);
  // The exposition text (JSON-escaped) carries TYPE headers and the
  // per-tier request histogram populated by the extract above.
  EXPECT_NE(resp.find("# TYPE"), std::string::npos);
  EXPECT_NE(resp.find("svc_request_ms_bucket"), std::string::npos);
  EXPECT_NE(resp.find("cmd=\\\"extract\\\""), std::string::npos) << resp;
}

TEST(Service, TraceCommandReturnsParentedSpanTree) {
  ExtractionService service;
  Request extract;
  extract.id = 1;
  extract.nodes = 300;
  extract.with_trace = false;
  ASSERT_NE(service.handle(extract).find("\"ok\": true"), std::string::npos);
  ASSERT_NE(service.handle(extract).find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(service.trace_store().size(), 2u);

  Request trace;
  trace.cmd = "trace";
  trace.id = 2;
  trace.trace_last = 8;
  const std::string resp = service.handle(trace);
  EXPECT_NE(resp.find("\"tracing\": true"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"kept\": 2"), std::string::npos);
  // One root per request: exactly two "parent": -1 spans, both named
  // svc.request, plus the stage/cache children under them.
  std::size_t roots = 0;
  for (std::size_t at = resp.find("\"parent\": -1"); at != std::string::npos;
       at = resp.find("\"parent\": -1", at + 1)) {
    ++roots;
  }
  EXPECT_EQ(roots, 2u) << resp;
  EXPECT_NE(resp.find("\"name\": \"svc.request\""), std::string::npos);
  EXPECT_NE(resp.find("\"name\": \"svc.scenario\""), std::string::npos);
  EXPECT_NE(resp.find("memo.hit:"), std::string::npos);
  EXPECT_NE(resp.find("\"tier\": \"cold\""), std::string::npos);
  EXPECT_NE(resp.find("\"tier\": \"warm_stage\""), std::string::npos);
  // The trace request itself is not stored (extract trees only).
  EXPECT_EQ(service.trace_store().size(), 2u);
}

TEST(Service, WireContextCarriesRequestIdAndQueueWait) {
  ExtractionService service;
  Request extract;
  extract.id = 1;
  extract.nodes = 300;
  extract.with_trace = false;

  WireContext wire;
  wire.request_id = 424242;
  wire.connection = 7;
  wire.dequeue_us = skelex::obs::Tracer::now_us();
  wire.enqueue_us = wire.dequeue_us - 1500;  // 1.5ms simulated queue wait
  ASSERT_NE(service.handle(extract, &wire).find("\"ok\": true"),
            std::string::npos);

  Request trace;
  trace.cmd = "trace";
  trace.id = 2;
  const std::string resp = service.handle(trace);
  EXPECT_NE(resp.find("\"request_id\": 424242"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"name\": \"exec.queue_wait\""), std::string::npos);
}

TEST(Service, TracingOffKeepsServingButReturnsNoTrees) {
  ExtractionService::Options opt;
  opt.trace_requests = false;
  ExtractionService service(opt);
  Request extract;
  extract.id = 1;
  extract.nodes = 300;
  extract.with_trace = false;
  ASSERT_NE(service.handle(extract).find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(service.trace_store().size(), 0u);

  Request trace;
  trace.cmd = "trace";
  trace.id = 2;
  const std::string resp = service.handle(trace);
  EXPECT_NE(resp.find("\"tracing\": false"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"requests\": []"), std::string::npos) << resp;
}

TEST(Service, TraceStoreRingEvictsOldest) {
  ExtractionService::Options opt;
  opt.trace_keep = 2;
  ExtractionService service(opt);
  Request extract;
  extract.nodes = 300;
  extract.with_trace = false;
  for (int i = 1; i <= 4; ++i) {
    extract.id = i;
    ASSERT_NE(service.handle(extract).find("\"ok\": true"),
              std::string::npos);
  }
  EXPECT_EQ(service.trace_store().size(), 2u);
}

TEST(RequestTrace, TierClassification) {
  using skelex::obs::RequestContext;
  {
    RequestContext ctx(1, false);
    EXPECT_STREQ(ctx.tier(), "none");
    ctx.note_cache("scenario", /*hit=*/false);
    EXPECT_STREQ(ctx.tier(), "cold");
  }
  {
    RequestContext ctx(2, false);
    ctx.note_cache("scenario", true);
    ctx.note_cache("index", false);
    EXPECT_STREQ(ctx.tier(), "warm_scenario");
  }
  {
    RequestContext ctx(3, false);
    ctx.note_cache("scenario", true);
    ctx.note_cache("index", true);
    EXPECT_STREQ(ctx.tier(), "warm_stage");
  }
}

TEST(RequestTrace, SpanCapCountsDrops) {
  skelex::obs::RequestContext ctx(9, true);
  for (int i = 0; i < skelex::obs::RequestContext::kMaxSpans + 10; ++i) {
    const int idx = ctx.begin_span("s", "t");
    ctx.end_span(idx);
  }
  EXPECT_EQ(static_cast<int>(ctx.spans.size()),
            skelex::obs::RequestContext::kMaxSpans);
  EXPECT_EQ(ctx.dropped_spans, 10);
}

}  // namespace
}  // namespace skelex::svc
