#include "geometry/shapes.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace skelex::geom::shapes {
namespace {

// Every named shape must be a sane region: positive area, bounded box,
// and all hole vertices strictly inside the outer ring (the Region
// constructor enforces the latter; building them at all is the test).
class AllShapesTest : public ::testing::TestWithParam<NamedShape> {};

TEST_P(AllShapesTest, IsValidRegion) {
  const Region& r = GetParam().region;
  EXPECT_GT(r.area(), 0.0) << r.name();
  Vec2 lo, hi;
  r.bounding_box(lo, hi);
  EXPECT_LT(lo.x, hi.x);
  EXPECT_LT(lo.y, hi.y);
  // The box is roughly the documented [0, 100] frame.
  EXPECT_GE(lo.x, -5.0);
  EXPECT_LE(hi.x, 105.0);
  EXPECT_GE(lo.y, -5.0);
  EXPECT_LE(hi.y, 105.0);
}

TEST_P(AllShapesTest, ContainsSomeInteriorPoint) {
  const Region& r = GetParam().region;
  // Scan a coarse grid; at least 5% of box samples must be inside, or the
  // region is degenerate for deployment purposes.
  Vec2 lo, hi;
  r.bounding_box(lo, hi);
  int inside = 0, total = 0;
  for (double y = lo.y; y <= hi.y; y += (hi.y - lo.y) / 40) {
    for (double x = lo.x; x <= hi.x; x += (hi.x - lo.x) / 40) {
      ++total;
      if (r.contains({x, y})) ++inside;
    }
  }
  EXPECT_GT(inside, total / 20) << r.name();
}

TEST_P(AllShapesTest, AreaConsistentWithContainment) {
  // Monte-Carlo-free check: grid fraction * box area ~ region area.
  const Region& r = GetParam().region;
  Vec2 lo, hi;
  r.bounding_box(lo, hi);
  int inside = 0, total = 0;
  const int steps = 120;
  for (int iy = 0; iy < steps; ++iy) {
    for (int ix = 0; ix < steps; ++ix) {
      const Vec2 p{lo.x + (ix + 0.5) * (hi.x - lo.x) / steps,
                   lo.y + (iy + 0.5) * (hi.y - lo.y) / steps};
      ++total;
      if (r.contains(p)) ++inside;
    }
  }
  const double grid_area =
      (hi.x - lo.x) * (hi.y - lo.y) * inside / static_cast<double>(total);
  EXPECT_NEAR(grid_area, r.area(), 0.06 * r.area()) << r.name();
}

INSTANTIATE_TEST_SUITE_P(Registry, AllShapesTest,
                         ::testing::ValuesIn(all_shapes()),
                         [](const auto& info) { return info.param.name; });

TEST(Shapes, HoleCounts) {
  EXPECT_EQ(window().hole_count(), 4u);
  EXPECT_EQ(one_hole().hole_count(), 1u);
  EXPECT_EQ(smile().hole_count(), 3u);
  EXPECT_EQ(star_hole().hole_count(), 1u);
  EXPECT_EQ(two_holes().hole_count(), 2u);
  EXPECT_EQ(annulus().hole_count(), 1u);
  EXPECT_EQ(star().hole_count(), 0u);
  EXPECT_EQ(spiral().hole_count(), 0u);
  EXPECT_EQ(flower().hole_count(), 0u);
  EXPECT_EQ(music().hole_count(), 0u);
  EXPECT_EQ(airplane().hole_count(), 0u);
  EXPECT_EQ(cactus().hole_count(), 0u);
}

TEST(Shapes, PaperScenariosCarryPaperNumbers) {
  const auto scenarios = paper_scenarios();
  ASSERT_EQ(scenarios.size(), 10u);  // Fig. 4 (a)-(j)
  for (const NamedShape& s : scenarios) {
    EXPECT_GT(s.paper_nodes, 0) << s.name;
    EXPECT_GT(s.paper_avg_deg, 5.0) << s.name;
    EXPECT_LT(s.paper_avg_deg, 10.0) << s.name;
  }
  EXPECT_EQ(scenarios.front().name, "one_hole");
  EXPECT_EQ(scenarios.back().name, "star");
}

TEST(Shapes, ByNameLookup) {
  EXPECT_EQ(by_name("window").name(), "window");
  EXPECT_EQ(by_name("cactus").name(), "cactus");
  EXPECT_THROW(by_name("no_such_shape"), std::out_of_range);
}

TEST(Shapes, WindowGeometry) {
  const Region w = window();
  EXPECT_TRUE(w.contains({50, 50}));    // central crossbar junction
  EXPECT_FALSE(w.contains({30, 30}));   // inside a pane
  EXPECT_TRUE(w.contains({7, 50}));     // frame
  EXPECT_DOUBLE_EQ(w.area(), 10000.0 - 4 * 30.0 * 30.0);
}

TEST(Shapes, SpiralIsASimpleBand) {
  const Region s = spiral();
  // Band interior near the start of the spiral (theta=0 -> point (60,50),
  // band half-width 7).
  EXPECT_TRUE(s.contains({60, 50}));
  // Center of the spiral is not inside the band.
  EXPECT_FALSE(s.contains({50, 50}));
}

TEST(Shapes, BumpyRectHasBump) {
  const Region b = bumpy_rect(8.0, 6.0);
  EXPECT_TRUE(b.contains({50, 43}));   // inside the bump
  EXPECT_FALSE(b.contains({40, 43}));  // beside the bump, above the rect
  EXPECT_TRUE(b.contains({40, 39}));
}

}  // namespace
}  // namespace skelex::geom::shapes
