#include "sim/engine.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/stats.h"

namespace skelex::sim {
namespace {

net::Graph path_graph(int n) {
  net::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

// Node 0 emits one message; every receiver forwards once. Records the
// round each node first heard it.
class WaveProtocol final : public Protocol {
 public:
  explicit WaveProtocol(int n) : heard_round_(static_cast<std::size_t>(n), -1) {}
  void on_start(NodeContext& ctx) override {
    if (ctx.node() == 0) {
      heard_round_[0] = 0;
      ctx.broadcast({1, 0, 0, 0, -1});
    }
  }
  void on_message(NodeContext& ctx, const Message& m) override {
    auto& h = heard_round_[static_cast<std::size_t>(ctx.node())];
    if (h != -1) return;
    h = ctx.round();
    EXPECT_EQ(m.kind, 1);
    ctx.broadcast({1, m.origin, m.hops + 1, 0, -1});
  }
  std::vector<int> heard_round_;
};

TEST(Engine, WavePropagatesOneHopPerRound) {
  const net::Graph g = path_graph(5);
  Engine e(g);
  WaveProtocol p(5);
  const RunStats s = e.run(p);
  EXPECT_EQ(p.heard_round_, (std::vector<int>{0, 1, 2, 3, 4}));
  // 5 broadcasts total (every node transmits once)...
  EXPECT_EQ(s.transmissions, 5);
  // ...and quiescence takes 5 rounds (last broadcast by node 4 delivers
  // to node 3 in round 5 and dies there).
  EXPECT_EQ(s.rounds, 5);
}

TEST(Engine, BroadcastCountsOneTransmissionManyReceptions) {
  net::Graph g(4);  // star centered at 0
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  Engine e(g);
  WaveProtocol p(4);
  const RunStats s = e.run(p);
  // Node 0 transmits once (3 receptions); leaves each transmit once
  // (1 reception each at node 0).
  EXPECT_EQ(s.transmissions, 4);
  EXPECT_EQ(s.receptions, 6);
}

TEST(Engine, SenderIsFilledIn) {
  net::Graph g(2);
  g.add_edge(0, 1);
  class SenderCheck final : public Protocol {
   public:
    void on_start(NodeContext& ctx) override {
      if (ctx.node() == 0) ctx.broadcast({0, 0, 0, 0, /*sender=*/999});
    }
    void on_message(NodeContext& ctx, const Message& m) override {
      EXPECT_EQ(ctx.node(), 1);
      EXPECT_EQ(m.sender, 0);  // engine overwrote the bogus value
      ++deliveries;
    }
    int deliveries = 0;
  };
  Engine e(g);
  SenderCheck p;
  e.run(p);
  EXPECT_EQ(p.deliveries, 1);
}

TEST(Engine, UnicastSend) {
  net::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  class Unicast final : public Protocol {
   public:
    void on_start(NodeContext& ctx) override {
      if (ctx.node() == 0) ctx.send(2, {7, 0, 0, 0, -1});
    }
    void on_message(NodeContext& ctx, const Message& m) override {
      EXPECT_EQ(ctx.node(), 2);
      EXPECT_EQ(m.kind, 7);
      ++deliveries;
    }
    int deliveries = 0;
  };
  Engine e(g);
  Unicast p;
  const RunStats s = e.run(p);
  EXPECT_EQ(p.deliveries, 1);
  EXPECT_EQ(s.transmissions, 1);
  EXPECT_EQ(s.receptions, 1);
}

TEST(Engine, RoundCapSetsFlagAndDiscardsPending) {
  net::Graph g(2);
  g.add_edge(0, 1);
  // Ping-pong forever.
  class PingPong final : public Protocol {
   public:
    void on_start(NodeContext& ctx) override {
      if (ctx.node() == 0) ctx.broadcast({0, 0, 0, 0, -1});
    }
    void on_message(NodeContext& ctx, const Message& m) override {
      ctx.broadcast({0, m.origin, m.hops + 1, 0, -1});
    }
  };
  Engine e(g);
  PingPong p;
  const RunStats s = e.run(p, /*max_rounds=*/10);
  EXPECT_TRUE(s.hit_round_cap);
  EXPECT_EQ(s.rounds, 10);
  EXPECT_TRUE(e.total().hit_round_cap);

  // The in-flight messages were discarded: a fresh protocol on the same
  // engine starts from a clean radio.
  WaveProtocol wave(2);
  const RunStats s2 = e.run(wave);
  EXPECT_FALSE(s2.hit_round_cap);
  EXPECT_EQ(wave.heard_round_, (std::vector<int>{0, 1}));
}

TEST(Engine, TotalAccumulatesAcrossRuns) {
  const net::Graph g = path_graph(3);
  Engine e(g);
  WaveProtocol p1(3), p2(3);
  const RunStats a = e.run(p1);
  const RunStats b = e.run(p2);
  EXPECT_EQ(e.total().transmissions, a.transmissions + b.transmissions);
  EXPECT_EQ(e.total().rounds, a.rounds + b.rounds);
}

TEST(Engine, DeterministicDeliveryOrder) {
  // Two sources flood simultaneously; the receiver in the middle must see
  // the message with the smaller origin first, regardless of send order.
  net::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  class Order final : public Protocol {
   public:
    void on_start(NodeContext& ctx) override {
      // Node 2 "sends first" — the engine must still deliver origin 0
      // first at node 1.
      if (ctx.node() == 2) ctx.broadcast({0, 2, 0, 0, -1});
      if (ctx.node() == 0) ctx.broadcast({0, 0, 0, 0, -1});
    }
    void on_message(NodeContext& ctx, const Message& m) override {
      if (ctx.node() == 1) order.push_back(m.origin);
    }
    std::vector<int> order;
  };
  Engine e(g);
  Order p;
  e.run(p);
  EXPECT_EQ(p.order, (std::vector<int>{0, 2}));
}

TEST(Engine, SendValidatesTarget) {
  net::Graph g(2);
  g.add_edge(0, 1);
  class BadSend final : public Protocol {
   public:
    void on_start(NodeContext& ctx) override {
      if (ctx.node() == 0) ctx.send(5, {0, 0, 0, 0, -1});
    }
    void on_message(NodeContext&, const Message&) override {}
  };
  Engine e(g);
  BadSend p;
  EXPECT_THROW(e.run(p), std::out_of_range);
}

TEST(RunStats, ArithmeticAndPrinting) {
  RunStats a{2, 10, 20}, b{3, 1, 2};
  const RunStats c = a + b;
  EXPECT_EQ(c.rounds, 5);
  EXPECT_EQ(c.transmissions, 11);
  EXPECT_EQ(c.receptions, 22);
  std::ostringstream os;
  os << c;
  EXPECT_EQ(os.str(), "{rounds=5, tx=11, rx=22}");
}

TEST(RunStats, PrintingIncludesFaultCountersAndRoundCap) {
  RunStats s{1, 2, 3};
  s.faults_tx_suppressed = 4;
  s.faults_rx_linkdown = 5;
  s.hit_round_cap = true;
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(),
            "{rounds=1, tx=2, rx=3, faults={tx_suppressed=4, rx_crashed=0, "
            "rx_sleeping=0, rx_linkdown=5}, hit_round_cap}");
}

TEST(RunStats, PlusAccumulatesFaultCountersAndOrsFlag) {
  RunStats a{1, 1, 1}, b{1, 1, 1};
  a.faults_rx_crashed = 2;
  b.faults_rx_crashed = 3;
  b.hit_round_cap = true;
  a += b;
  EXPECT_EQ(a.faults_rx_crashed, 5);
  EXPECT_TRUE(a.hit_round_cap);
  EXPECT_EQ(a.total_fault_drops(), 5);
}

}  // namespace
}  // namespace skelex::sim
