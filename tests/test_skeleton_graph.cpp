#include "core/skeleton_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace skelex::core {
namespace {

TEST(SkeletonGraph, StartsEmpty) {
  SkeletonGraph sk(10);
  EXPECT_EQ(sk.capacity(), 10);
  EXPECT_EQ(sk.node_count(), 0);
  EXPECT_EQ(sk.edge_count(), 0);
  EXPECT_FALSE(sk.has_node(3));
  EXPECT_TRUE(sk.nodes().empty());
  EXPECT_THROW(SkeletonGraph(-1), std::invalid_argument);
}

TEST(SkeletonGraph, AddRemoveNodes) {
  SkeletonGraph sk(5);
  sk.add_node(2);
  sk.add_node(2);  // idempotent
  EXPECT_EQ(sk.node_count(), 1);
  EXPECT_TRUE(sk.has_node(2));
  sk.remove_node(2);
  sk.remove_node(2);  // idempotent
  EXPECT_EQ(sk.node_count(), 0);
  EXPECT_THROW(sk.add_node(7), std::out_of_range);
}

TEST(SkeletonGraph, EdgesImplyNodes) {
  SkeletonGraph sk(5);
  sk.add_edge(0, 1);
  EXPECT_TRUE(sk.has_node(0));
  EXPECT_TRUE(sk.has_node(1));
  EXPECT_TRUE(sk.has_edge(0, 1));
  EXPECT_TRUE(sk.has_edge(1, 0));
  EXPECT_EQ(sk.edge_count(), 1);
  sk.add_edge(0, 1);  // duplicate
  sk.add_edge(0, 0);  // self
  EXPECT_EQ(sk.edge_count(), 1);
  EXPECT_EQ(sk.degree(0), 1);
}

TEST(SkeletonGraph, RemoveNodeDetachesEdges) {
  SkeletonGraph sk(4);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 0);
  sk.remove_node(1);
  EXPECT_EQ(sk.edge_count(), 1);
  EXPECT_FALSE(sk.has_edge(0, 1));
  EXPECT_TRUE(sk.has_edge(0, 2));
  EXPECT_EQ(sk.degree(0), 1);
}

TEST(SkeletonGraph, RemoveEdgeKeepsNodes) {
  SkeletonGraph sk(3);
  sk.add_edge(0, 1);
  sk.remove_edge(0, 1);
  sk.remove_edge(0, 1);  // idempotent
  EXPECT_EQ(sk.edge_count(), 0);
  EXPECT_TRUE(sk.has_node(0));
  EXPECT_TRUE(sk.has_node(1));
}

TEST(SkeletonGraph, ComponentsAndCycleRank) {
  SkeletonGraph sk(10);
  // Triangle 0-1-2, path 3-4, isolated node 5.
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 0);
  sk.add_edge(3, 4);
  sk.add_node(5);
  EXPECT_EQ(sk.component_count(), 3);
  EXPECT_EQ(sk.cycle_rank(), 1);  // E - V + C = 4 - 6 + 3
  int count = 0;
  const auto label = sk.component_labels(count);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[0], label[2]);
  EXPECT_NE(label[0], label[3]);
  EXPECT_EQ(label[6], -1);  // absent node
}

TEST(SkeletonGraph, CycleBasisOnTriangle) {
  SkeletonGraph sk(3);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 0);
  const auto cycles = sk.cycle_basis();
  ASSERT_EQ(cycles.size(), 1u);
  std::set<int> nodes(cycles[0].begin(), cycles[0].end());
  EXPECT_EQ(nodes, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(SkeletonGraph, CycleBasisValidCycles) {
  // Two squares sharing an edge: rank 2.
  SkeletonGraph sk(6);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 3);
  sk.add_edge(3, 0);
  sk.add_edge(1, 4);
  sk.add_edge(4, 5);
  sk.add_edge(5, 2);
  EXPECT_EQ(sk.cycle_rank(), 2);
  const auto cycles = sk.cycle_basis();
  ASSERT_EQ(cycles.size(), 2u);
  for (const auto& cyc : cycles) {
    ASSERT_GE(cyc.size(), 3u);
    // Consecutive nodes (and the wrap-around pair) are adjacent; all
    // nodes distinct.
    std::set<int> uniq(cyc.begin(), cyc.end());
    EXPECT_EQ(uniq.size(), cyc.size());
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      EXPECT_TRUE(sk.has_edge(cyc[i], cyc[(i + 1) % cyc.size()]))
          << cyc[i] << "-" << cyc[(i + 1) % cyc.size()];
    }
  }
}

TEST(SkeletonGraph, CycleBasisEmptyOnForest) {
  SkeletonGraph sk(5);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(3, 4);
  EXPECT_TRUE(sk.cycle_basis().empty());
  EXPECT_EQ(sk.cycle_rank(), 0);
}

TEST(SkeletonGraph, Leaves) {
  SkeletonGraph sk(5);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(1, 3);
  EXPECT_EQ(sk.leaves(), (std::vector<int>{0, 2, 3}));
}

TEST(SkeletonGraph, NodesSortedAscending) {
  SkeletonGraph sk(10);
  sk.add_node(7);
  sk.add_node(2);
  sk.add_node(5);
  EXPECT_EQ(sk.nodes(), (std::vector<int>{2, 5, 7}));
}

}  // namespace
}  // namespace skelex::core
