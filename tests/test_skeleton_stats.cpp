#include "metrics/skeleton_stats.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

namespace skelex::metrics {
namespace {

TEST(SkeletonStats, Empty) {
  core::SkeletonGraph sk(5);
  const SkeletonStats s = skeleton_stats(sk);
  EXPECT_EQ(s.nodes, 0);
  EXPECT_EQ(s.branches, 0);
  EXPECT_EQ(s.mean_branch_len, 0.0);
}

TEST(SkeletonStats, BarePath) {
  core::SkeletonGraph sk(5);
  for (int i = 0; i < 4; ++i) sk.add_edge(i, i + 1);
  const SkeletonStats s = skeleton_stats(sk);
  EXPECT_EQ(s.nodes, 5);
  EXPECT_EQ(s.edges, 4);
  EXPECT_EQ(s.leaves, 2);
  EXPECT_EQ(s.junctions, 0);
  EXPECT_EQ(s.branches, 1);
  EXPECT_EQ(s.longest_branch, 4);
  EXPECT_DOUBLE_EQ(s.mean_branch_len, 4.0);
}

TEST(SkeletonStats, YShape) {
  // Arms of lengths 2, 2, 3 off junction 0.
  core::SkeletonGraph sk(8);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(0, 3);
  sk.add_edge(3, 4);
  sk.add_edge(0, 5);
  sk.add_edge(5, 6);
  sk.add_edge(6, 7);
  const SkeletonStats s = skeleton_stats(sk);
  EXPECT_EQ(s.junctions, 1);
  EXPECT_EQ(s.leaves, 3);
  EXPECT_EQ(s.branches, 3);
  EXPECT_EQ(s.longest_branch, 3);
  EXPECT_NEAR(s.mean_branch_len, 7.0 / 3.0, 1e-12);
}

TEST(SkeletonStats, PureCycle) {
  core::SkeletonGraph sk(6);
  for (int i = 0; i < 6; ++i) sk.add_edge(i, (i + 1) % 6);
  const SkeletonStats s = skeleton_stats(sk);
  EXPECT_EQ(s.cycles, 1);
  EXPECT_EQ(s.junctions, 0);
  EXPECT_EQ(s.leaves, 0);
  EXPECT_EQ(s.branches, 1);
  EXPECT_EQ(s.longest_branch, 6);
}

TEST(SkeletonStats, ThetaGraph) {
  // Two junctions, three parallel chains of lengths 2, 2, 3.
  core::SkeletonGraph sk(8);
  sk.add_edge(0, 1);
  sk.add_edge(1, 5);
  sk.add_edge(0, 2);
  sk.add_edge(2, 5);
  sk.add_edge(0, 3);
  sk.add_edge(3, 4);
  sk.add_edge(4, 5);
  const SkeletonStats s = skeleton_stats(sk);
  EXPECT_EQ(s.junctions, 2);
  EXPECT_EQ(s.leaves, 0);
  EXPECT_EQ(s.branches, 3);
  EXPECT_EQ(s.cycles, 2);
  EXPECT_EQ(s.longest_branch, 3);
}

TEST(SkeletonStats, CrossNetworkHasFourishBranches) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1400;
  spec.target_avg_deg = 7.5;
  spec.seed = 10;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::cross(), spec);
  const core::SkeletonResult r =
      core::extract_skeleton(sc.graph, core::Params{});
  const SkeletonStats s = skeleton_stats(r.skeleton);
  EXPECT_EQ(s.cycles, 0);
  EXPECT_GE(s.leaves, 3);   // the four arms (one may merge at a junction)
  EXPECT_LE(s.leaves, 6);
  EXPECT_GE(s.junctions, 1);
  std::ostringstream os;
  os << s;
  EXPECT_NE(os.str().find("branches="), std::string::npos);
}

}  // namespace
}  // namespace skelex::metrics
