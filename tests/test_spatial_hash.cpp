#include "net/spatial_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "deploy/rng.h"
#include "exec/thread_pool.h"

namespace skelex::net {
namespace {

using geom::Vec2;

std::vector<Vec2> random_points(int n, double extent, std::uint64_t seed) {
  deploy::Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, extent), rng.uniform(0, extent)});
  }
  return pts;
}

// Property: query() returns exactly the brute-force ball.
class SpatialHashQueryTest
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(SpatialHashQueryTest, QueryMatchesBruteForce) {
  const auto [n, radius, seed] = GetParam();
  const auto pts = random_points(n, 50.0, seed);
  const SpatialHash hash(pts, radius);
  deploy::Rng qrng(seed ^ 0xabc);
  for (int q = 0; q < 20; ++q) {
    const Vec2 p{qrng.uniform(-5, 55), qrng.uniform(-5, 55)};
    std::set<int> expected;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (geom::dist(pts[i], p) <= radius) expected.insert(static_cast<int>(i));
    }
    std::vector<int> got = hash.query(p, radius);
    std::set<int> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected);
    EXPECT_EQ(got.size(), got_set.size()) << "duplicates in query result";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialHashQueryTest,
    ::testing::Combine(::testing::Values(1, 10, 200, 1000),
                       ::testing::Values(0.5, 3.0, 12.0),
                       ::testing::Values(1u, 99u)));

// Property: for_each_pair visits exactly the brute-force pair set, once.
class SpatialHashPairsTest
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(SpatialHashPairsTest, PairsMatchBruteForce) {
  const auto [n, radius, seed] = GetParam();
  const auto pts = random_points(n, 40.0, seed);
  std::set<std::pair<int, int>> expected;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (geom::dist(pts[i], pts[j]) <= radius) {
        expected.insert({static_cast<int>(i), static_cast<int>(j)});
      }
    }
  }
  const SpatialHash hash(pts, radius);
  std::multiset<std::pair<int, int>> got;
  hash.for_each_pair(radius, [&](int a, int b) {
    ASSERT_LT(a, b);
    got.insert({a, b});
  });
  std::set<std::pair<int, int>> got_set(got.begin(), got.end());
  EXPECT_EQ(got_set, expected);
  EXPECT_EQ(got.size(), got_set.size()) << "pair visited twice";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialHashPairsTest,
    ::testing::Combine(::testing::Values(2, 50, 400),
                       ::testing::Values(1.0, 5.0, 15.0),
                       ::testing::Values(7u, 1234u)));

TEST(SpatialHash, EmptyPointSet) {
  const SpatialHash hash({}, 1.0);
  EXPECT_TRUE(hash.query({0, 0}, 1.0).empty());
  int calls = 0;
  hash.for_each_pair(1.0, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(SpatialHash, RejectsBadCell) {
  EXPECT_THROW(SpatialHash({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(SpatialHash, CoincidentPoints) {
  std::vector<Vec2> pts(5, Vec2{1, 1});
  const SpatialHash hash(pts, 1.0);
  EXPECT_EQ(hash.query({1, 1}, 0.5).size(), 5u);
  int pairs = 0;
  hash.for_each_pair(0.5, [&](int, int) { ++pairs; });
  EXPECT_EQ(pairs, 10);
}

// --- parallel build & sweeps (the large-n path) ------------------------------
// 70,001 points crosses 2^16 with a count not divisible by any pool
// size. The chunk-major merges must reproduce the serial build's cell
// layout and the serial sweep's pair emission order byte for byte at
// any worker count — the contract net::build_graph leans on for
// deterministic-model graphs.

TEST(SpatialHash, ParallelBuildAndSweepsBitIdenticalPast64kPoints) {
  const int n = 70'001;
  const auto pts = random_points(n, 300.0, 42);
  const double radius = 2.0;
  exec::ThreadPool serial(1);
  const SpatialHash ref(pts, radius, &serial);
  std::vector<std::pair<int, int>> want_pairs;
  ref.for_each_pair(radius, [&](int a, int b) { want_pairs.push_back({a, b}); });
  EXPECT_EQ(ref.count_pairs(radius, &serial),
            static_cast<long long>(want_pairs.size()));
  EXPECT_EQ(ref.collect_pairs(radius, &serial), want_pairs);

  for (int threads : {2, 8}) {
    exec::ThreadPool pool(threads);
    const SpatialHash hash(pts, radius, &pool);
    // Identical cell layout: every query must return the same ids in
    // the same order as the serial build's.
    deploy::Rng qrng(7);
    for (int q = 0; q < 10; ++q) {
      const Vec2 p{qrng.uniform(0, 300), qrng.uniform(0, 300)};
      EXPECT_EQ(hash.query(p, radius), ref.query(p, radius))
          << "threads=" << threads;
    }
    EXPECT_EQ(hash.count_pairs(radius, &pool),
              static_cast<long long>(want_pairs.size()))
        << "threads=" << threads;
    EXPECT_EQ(hash.collect_pairs(radius, &pool), want_pairs)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace skelex::net
