#include "net/spatial_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "deploy/rng.h"

namespace skelex::net {
namespace {

using geom::Vec2;

std::vector<Vec2> random_points(int n, double extent, std::uint64_t seed) {
  deploy::Rng rng(seed);
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0, extent), rng.uniform(0, extent)});
  }
  return pts;
}

// Property: query() returns exactly the brute-force ball.
class SpatialHashQueryTest
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(SpatialHashQueryTest, QueryMatchesBruteForce) {
  const auto [n, radius, seed] = GetParam();
  const auto pts = random_points(n, 50.0, seed);
  const SpatialHash hash(pts, radius);
  deploy::Rng qrng(seed ^ 0xabc);
  for (int q = 0; q < 20; ++q) {
    const Vec2 p{qrng.uniform(-5, 55), qrng.uniform(-5, 55)};
    std::set<int> expected;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (geom::dist(pts[i], p) <= radius) expected.insert(static_cast<int>(i));
    }
    std::vector<int> got = hash.query(p, radius);
    std::set<int> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected);
    EXPECT_EQ(got.size(), got_set.size()) << "duplicates in query result";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialHashQueryTest,
    ::testing::Combine(::testing::Values(1, 10, 200, 1000),
                       ::testing::Values(0.5, 3.0, 12.0),
                       ::testing::Values(1u, 99u)));

// Property: for_each_pair visits exactly the brute-force pair set, once.
class SpatialHashPairsTest
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {};

TEST_P(SpatialHashPairsTest, PairsMatchBruteForce) {
  const auto [n, radius, seed] = GetParam();
  const auto pts = random_points(n, 40.0, seed);
  std::set<std::pair<int, int>> expected;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (geom::dist(pts[i], pts[j]) <= radius) {
        expected.insert({static_cast<int>(i), static_cast<int>(j)});
      }
    }
  }
  const SpatialHash hash(pts, radius);
  std::multiset<std::pair<int, int>> got;
  hash.for_each_pair(radius, [&](int a, int b) {
    ASSERT_LT(a, b);
    got.insert({a, b});
  });
  std::set<std::pair<int, int>> got_set(got.begin(), got.end());
  EXPECT_EQ(got_set, expected);
  EXPECT_EQ(got.size(), got_set.size()) << "pair visited twice";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialHashPairsTest,
    ::testing::Combine(::testing::Values(2, 50, 400),
                       ::testing::Values(1.0, 5.0, 15.0),
                       ::testing::Values(7u, 1234u)));

TEST(SpatialHash, EmptyPointSet) {
  const SpatialHash hash({}, 1.0);
  EXPECT_TRUE(hash.query({0, 0}, 1.0).empty());
  int calls = 0;
  hash.for_each_pair(1.0, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(SpatialHash, RejectsBadCell) {
  EXPECT_THROW(SpatialHash({{0, 0}}, 0.0), std::invalid_argument);
}

TEST(SpatialHash, CoincidentPoints) {
  std::vector<Vec2> pts(5, Vec2{1, 1});
  const SpatialHash hash(pts, 1.0);
  EXPECT_EQ(hash.query({1, 1}, 0.5).size(), 5u);
  int pairs = 0;
  hash.for_each_pair(0.5, [&](int, int) { ++pairs; });
  EXPECT_EQ(pairs, 10);
}

}  // namespace
}  // namespace skelex::net
