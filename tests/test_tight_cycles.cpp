#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/cleanup.h"
#include "core/skeleton_graph.h"
#include "net/graph.h"

namespace skelex::core {
namespace {

TEST(TightCycles, EmptyOnForest) {
  SkeletonGraph sk(6);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(3, 4);
  EXPECT_TRUE(sk.tight_cycles().empty());
}

TEST(TightCycles, SingleTriangle) {
  SkeletonGraph sk(3);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 0);
  const auto cycles = sk.tight_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 3u);
}

TEST(TightCycles, ThetaGraphGivesTwoShortFaces) {
  // Theta: junctions 0 and 5, three parallel paths of lengths 2, 2, 5.
  //   0-1-5, 0-2-5, 0-3-4-6-7-5
  SkeletonGraph sk(8);
  sk.add_edge(0, 1);
  sk.add_edge(1, 5);
  sk.add_edge(0, 2);
  sk.add_edge(2, 5);
  sk.add_edge(0, 3);
  sk.add_edge(3, 4);
  sk.add_edge(4, 6);
  sk.add_edge(6, 7);
  sk.add_edge(7, 5);
  EXPECT_EQ(sk.cycle_rank(), 2);
  const auto cycles = sk.tight_cycles();
  ASSERT_EQ(cycles.size(), 2u);
  // Both tight cycles use the two SHORT paths where possible: the
  // fundamental-cycle alternative could return the long way around; the
  // tight version must prefer 0-1-5-2 (length 4).
  std::vector<std::size_t> lens{cycles[0].size(), cycles[1].size()};
  std::sort(lens.begin(), lens.end());
  EXPECT_EQ(lens[0], 4u);  // the two short paths
  EXPECT_LE(lens[1], 7u);  // short + long path, never long + long
}

TEST(TightCycles, CyclesAreValidClosedWalks) {
  // Two squares sharing an edge.
  SkeletonGraph sk(6);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 3);
  sk.add_edge(3, 0);
  sk.add_edge(1, 4);
  sk.add_edge(4, 5);
  sk.add_edge(5, 2);
  for (const auto& cyc : sk.tight_cycles()) {
    ASSERT_GE(cyc.size(), 3u);
    std::set<int> uniq(cyc.begin(), cyc.end());
    EXPECT_EQ(uniq.size(), cyc.size());
    for (std::size_t i = 0; i < cyc.size(); ++i) {
      EXPECT_TRUE(sk.has_edge(cyc[i], cyc[(i + 1) % cyc.size()]));
    }
  }
}

TEST(TightCycles, DeduplicatesSameFace) {
  // A single square: whichever spanning tree is chosen, exactly one
  // tight cycle comes out even if several non-tree edges map to the same
  // face after shortest-path rerouting.
  SkeletonGraph sk(4);
  sk.add_edge(0, 1);
  sk.add_edge(1, 2);
  sk.add_edge(2, 3);
  sk.add_edge(3, 0);
  EXPECT_EQ(sk.tight_cycles().size(), 1u);
}

TEST(CycleIsThin, AbsoluteFloor) {
  // A 4-cycle: opposite nodes are 2 apart via the cycle itself ->
  // thin at the default floor of 2 hops.
  net::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  Params p;
  EXPECT_TRUE(cycle_is_thin(g, {0, 1, 2, 3}, p));
}

TEST(CycleIsThin, LongRingIsNotThin) {
  // A 20-ring with no chords: opposite nodes are 10 hops apart, the
  // relative limit is 0.2 * 20 = 4 -> not thin.
  net::Graph g(20);
  for (int i = 0; i < 20; ++i) g.add_edge(i, (i + 1) % 20);
  std::vector<int> cycle(20);
  for (int i = 0; i < 20; ++i) cycle[static_cast<std::size_t>(i)] = i;
  Params p;
  EXPECT_FALSE(cycle_is_thin(g, cycle, p));
}

TEST(CycleIsThin, ChordedRingBecomesThin) {
  // The same 20-ring, but with diameter chords connecting every node to
  // its opposite: every opposite pair is 1 hop -> thin.
  net::Graph g(20);
  for (int i = 0; i < 20; ++i) g.add_edge(i, (i + 1) % 20);
  for (int i = 0; i < 10; ++i) g.add_edge(i, i + 10);  // diameters
  std::vector<int> cycle(20);
  for (int i = 0; i < 20; ++i) cycle[static_cast<std::size_t>(i)] = i;
  Params p;
  EXPECT_TRUE(cycle_is_thin(g, cycle, p));
}

TEST(CycleIsThin, RespectsCustomParams) {
  net::Graph g(8);
  for (int i = 0; i < 8; ++i) g.add_edge(i, (i + 1) % 8);
  std::vector<int> cycle{0, 1, 2, 3, 4, 5, 6, 7};
  Params p;
  p.thin_cycle_hops = 2;
  p.thin_cycle_ratio = 0.0;
  EXPECT_FALSE(cycle_is_thin(g, cycle, p));  // opposite pairs 4 apart
  p.thin_cycle_hops = 4;
  EXPECT_TRUE(cycle_is_thin(g, cycle, p));
  p.thin_cycle_ratio = 0.6;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace skelex::core
