#include "geometry/vec2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <sstream>

namespace skelex::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, Vec2(4, -2));
  EXPECT_EQ(a - b, Vec2(-2, 6));
  EXPECT_EQ(a * 2.0, Vec2(2, 4));
  EXPECT_EQ(2.0 * a, Vec2(2, 4));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1));
  EXPECT_EQ(-a, Vec2(-1, -2));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1, 1};
  v += {2, 3};
  EXPECT_EQ(v, Vec2(3, 4));
  v -= {1, 1};
  EXPECT_EQ(v, Vec2(2, 3));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4, 6));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1, 0}, b{0, 1};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);   // b is CCW from a
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);  // a is CW from b
  EXPECT_DOUBLE_EQ(Vec2(3, 4).dot({3, 4}), 25.0);
}

TEST(Vec2, NormAndNormalize) {
  EXPECT_DOUBLE_EQ(Vec2(3, 4).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(3, 4).norm2(), 25.0);
  const Vec2 u = Vec2(0, -7).normalized();
  EXPECT_DOUBLE_EQ(u.x, 0.0);
  EXPECT_DOUBLE_EQ(u.y, -1.0);
  // Zero vector normalizes to zero, not NaN.
  const Vec2 z = Vec2{}.normalized();
  EXPECT_EQ(z, Vec2());
}

TEST(Vec2, PerpAndRotation) {
  EXPECT_EQ(Vec2(1, 0).perp(), Vec2(0, 1));
  const Vec2 r = Vec2(1, 0).rotated(std::numbers::pi / 2);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  const Vec2 full = Vec2(2, 3).rotated(2 * std::numbers::pi);
  EXPECT_NEAR(full.x, 2.0, 1e-12);
  EXPECT_NEAR(full.y, 3.0, 1e-12);
}

TEST(Vec2, Distances) {
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(dist2({1, 1}, {2, 2}), 2.0);
}

TEST(PointSegment, ClosestPointInterior) {
  // Projection falls inside the segment.
  const Vec2 c = closest_point_on_segment({5, 5}, {0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(c.x, 5.0);
  EXPECT_DOUBLE_EQ(c.y, 0.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({5, 5}, {0, 0}, {10, 0}), 5.0);
}

TEST(PointSegment, ClampsToEndpoints) {
  EXPECT_EQ(closest_point_on_segment({-3, 1}, {0, 0}, {10, 0}), Vec2(0, 0));
  EXPECT_EQ(closest_point_on_segment({14, 1}, {0, 0}, {10, 0}), Vec2(10, 0));
  EXPECT_DOUBLE_EQ(point_segment_distance({13, 4}, {0, 0}, {10, 0}), 5.0);
}

TEST(PointSegment, DegenerateSegment) {
  EXPECT_EQ(closest_point_on_segment({7, 7}, {1, 2}, {1, 2}), Vec2(1, 2));
  EXPECT_DOUBLE_EQ(point_segment_distance({1, 5}, {1, 2}, {1, 2}), 3.0);
}

TEST(Vec2, StreamOutput) {
  std::ostringstream os;
  os << Vec2{1.5, -2};
  EXPECT_EQ(os.str(), "(1.5, -2)");
}

}  // namespace
}  // namespace skelex::geom
