#include "viz/ppm.h"
#include "viz/svg.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "geometry/shapes.h"

namespace skelex::viz {
namespace {

net::Graph tiny_graph() {
  net::Graph g(std::vector<geom::Vec2>{{0, 0}, {10, 0}, {10, 10}});
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return g;
}

TEST(Svg, ProducesWellFormedDocument) {
  SvgWriter svg({0, 0}, {10, 10}, 100.0);
  const net::Graph g = tiny_graph();
  svg.add_graph_edges(g);
  svg.add_graph_nodes(g);
  svg.add_nodes(g, {0}, "#ff0000", 3.0);
  core::SkeletonGraph sk(3);
  sk.add_edge(0, 1);
  svg.add_skeleton(g, sk);
  svg.add_labeled_nodes(g, {0, 1, -1});
  svg.add_region_outline(geom::shapes::rect(10, 10));
  svg.add_text({5, 5}, "hello");
  const std::string s = svg.str();
  EXPECT_NE(s.find("<svg"), std::string::npos);
  EXPECT_NE(s.find("</svg>"), std::string::npos);
  EXPECT_NE(s.find("<line"), std::string::npos);
  EXPECT_NE(s.find("<circle"), std::string::npos);
  EXPECT_NE(s.find("<polygon"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
  // Label -1 nodes are skipped: exactly 2 labeled circles were drawn
  // (heuristic: the document contains both palette colors used).
  EXPECT_NE(s.find("#1f77b4"), std::string::npos);
  EXPECT_NE(s.find("#ff7f0e"), std::string::npos);
}

TEST(Svg, YAxisIsFlipped) {
  SvgWriter svg({0, 0}, {10, 10}, 100.0);
  net::Graph g(std::vector<geom::Vec2>{{0, 0}});
  svg.add_graph_nodes(g);
  // World (0,0) maps to the BOTTOM of the canvas (cy > half height).
  const std::string s = svg.str();
  const auto pos = s.find("cy=\"");
  ASSERT_NE(pos, std::string::npos);
  const double cy = std::stod(s.substr(pos + 4));
  EXPECT_GT(cy, 50.0);
}

TEST(Svg, RejectsEmptyBox) {
  EXPECT_THROW(SvgWriter({0, 0}, {0, 10}), std::invalid_argument);
  EXPECT_THROW(SvgWriter({0, 10}, {0, 0}), std::invalid_argument);
}

TEST(Svg, SaveAndReload) {
  const std::string path = "test_viz_out.svg";
  SvgWriter svg({0, 0}, {1, 1});
  svg.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, svg.str());
  std::remove(path.c_str());
  EXPECT_THROW(svg.save("/no/such/dir/x.svg"), std::runtime_error);
}

TEST(Ppm, PixelOperations) {
  PpmImage img(10, 5, {255, 255, 255});
  EXPECT_EQ(img.width(), 10);
  EXPECT_EQ(img.height(), 5);
  img.set(3, 2, {1, 2, 3});
  const Rgb c = img.get(3, 2);
  EXPECT_EQ(c.r, 1);
  EXPECT_EQ(c.g, 2);
  EXPECT_EQ(c.b, 3);
  // Out-of-range accesses are safe.
  img.set(-1, 0, {9, 9, 9});
  img.set(100, 100, {9, 9, 9});
  EXPECT_EQ(img.get(-5, 0).r, 0);
  EXPECT_THROW(PpmImage(0, 5), std::invalid_argument);
}

TEST(Ppm, DotDrawsDisk) {
  PpmImage img(11, 11, {0, 0, 0});
  img.dot(5, 5, 2, {255, 0, 0});
  EXPECT_EQ(img.get(5, 5).r, 255);
  EXPECT_EQ(img.get(7, 5).r, 255);
  EXPECT_EQ(img.get(8, 5).r, 0);   // outside radius
  EXPECT_EQ(img.get(7, 7).r, 0);   // corner outside disk
}

TEST(Ppm, SaveProducesValidHeader) {
  const std::string path = "test_viz_out.ppm";
  PpmImage img(4, 3);
  img.save(path);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::string pixels((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  EXPECT_EQ(pixels.size(), 4u * 3u * 3u);
  std::remove(path.c_str());
}

TEST(HeatColor, EndpointsAndClamping) {
  const Rgb cold = heat_color(0.0);
  const Rgb hot = heat_color(1.0);
  EXPECT_EQ(cold.b, 255);
  EXPECT_LT(cold.r, 100);
  EXPECT_EQ(hot.r, 255);
  EXPECT_LT(hot.b, 100);
  const Rgb below = heat_color(-5.0);
  EXPECT_EQ(below.b, cold.b);
  const Rgb above = heat_color(7.0);
  EXPECT_EQ(above.r, hot.r);
}

}  // namespace
}  // namespace skelex::viz
