#include "core/voronoi.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "core/identify.h"
#include "core/index.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"

namespace skelex::core {
namespace {

// Path 0-1-2-3-4-5-6 with sites {0, 6}.
TEST(Voronoi, PathGraphTwoSites) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  Params p;  // alpha = 1
  const VoronoiResult r = build_voronoi(g, {6, 0, 0}, p);  // dup + unsorted
  ASSERT_EQ(r.sites, (std::vector<int>{0, 6}));
  EXPECT_EQ(r.dist, (std::vector<int>{0, 1, 2, 3, 2, 1, 0}));
  EXPECT_EQ(r.site_of[1], 0);
  EXPECT_EQ(r.site_of[5], 1);
  // Node 3 is equidistant (3 vs 3): adopted from smaller site id, second
  // record from the other side within alpha.
  EXPECT_EQ(r.site_of[3], 0);
  EXPECT_TRUE(r.is_segment[3]);
  EXPECT_EQ(r.site2_of[3], 1);
  EXPECT_EQ(r.dist2[3], 3);  // via node 4, which is 2 hops from site 6
  EXPECT_EQ(r.via2[3], 4);
  // Node 2: dist 2 to site 0, 4 to site 1 -> |diff| within alpha via
  // neighbor 3? Neighbor 3 is in cell 0 too, so no second record.
  EXPECT_FALSE(r.is_segment[2]);
  // Node 4: dist 2 to site 1... adopted site: BFS dist to 0 is 4, to 6 is
  // 2 -> cell 1; neighbor 3 is in cell 0 with dist 3: |3+1-2| = 2 > alpha.
  EXPECT_FALSE(r.is_segment[4]);
}

TEST(Voronoi, AlphaWidensSegmentBand) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  Params p;
  p.alpha = 2;
  const VoronoiResult r = build_voronoi(g, {0, 6}, p);
  EXPECT_TRUE(r.is_segment[3]);
  EXPECT_TRUE(r.is_segment[4]);  // neighbor 3 is in cell 0: |4 - 2| <= 2
  // Node 2's neighbors (1 and 3) are both in its own cell — it never
  // hears from cell 1, so it cannot be a segment node at any alpha.
  EXPECT_FALSE(r.is_segment[2]);
}

TEST(Voronoi, PathsAreValidReversePaths) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  const VoronoiResult r = build_voronoi(g, {0, 6}, Params{});
  const auto p1 = r.path_to_site(3);
  EXPECT_EQ(p1, (std::vector<int>{3, 2, 1, 0}));
  const auto p2 = r.path_to_second_site(3);
  EXPECT_EQ(p2, (std::vector<int>{3, 4, 5, 6}));
  EXPECT_TRUE(r.path_to_second_site(2).empty());
}

TEST(Voronoi, VoronoiNodeNeedsThreeCells) {
  // Star: center node 0 adjacent to three 2-chains ending in sites.
  //   sites: 3, 6, 9 at distance 3 from the hub through chains.
  net::Graph g(10);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(0, 7);
  g.add_edge(7, 8);
  g.add_edge(8, 9);
  const VoronoiResult r = build_voronoi(g, {3, 6, 9}, Params{});
  // Hub 0 is distance 3 from every site: within alpha of >= 2 others.
  EXPECT_TRUE(r.is_segment[0]);
  EXPECT_TRUE(r.is_voronoi_node[0]);
  // Chain nodes are only near two cells at most.
  EXPECT_FALSE(r.is_voronoi_node[2]);
}

TEST(Voronoi, SitesOutOfRangeThrow) {
  net::Graph g(3);
  EXPECT_THROW(build_voronoi(g, {5}, Params{}), std::out_of_range);
}

TEST(AdjacentPairs, GroupsSegmentNodesByPair) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  const VoronoiResult r = build_voronoi(g, {0, 6}, Params{});
  const auto pairs = adjacent_pairs(r);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].site_a, 0);
  EXPECT_EQ(pairs[0].site_b, 1);
  EXPECT_EQ(pairs[0].segment_nodes, (std::vector<int>{3}));
}

// ---- Properties on realistic networks --------------------------------------

struct VoronoiPropertyCase {
  const char* shape;
  std::uint64_t seed;
};

class VoronoiPropertyTest
    : public ::testing::TestWithParam<VoronoiPropertyCase> {};

TEST_P(VoronoiPropertyTest, InvariantsHold) {
  const auto [shape, seed] = GetParam();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 900;
  spec.target_avg_deg = 8.0;
  spec.seed = seed;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::by_name(shape), spec);
  const net::Graph& g = sc.graph;
  Params p;
  const IndexData idx = compute_index(g, p);
  const std::vector<int> crit = identify_critical_nodes(g, idx, p);
  ASSERT_FALSE(crit.empty());
  const VoronoiResult r = build_voronoi(g, crit, p);

  // (a) dist matches plain multi-source BFS.
  const auto bfs = net::multi_source_bfs(g, r.sites);
  EXPECT_EQ(r.dist, bfs.dist);

  // (b) every node adopted a site and its site is at the claimed distance.
  for (int v = 0; v < g.n(); ++v) {
    ASSERT_NE(r.site_of[static_cast<std::size_t>(v)], -1);
    const int site_node =
        r.sites[static_cast<std::size_t>(r.site_of[static_cast<std::size_t>(v)])];
    const auto path = r.path_to_site(v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), v);
    EXPECT_EQ(path.back(), site_node);
    EXPECT_EQ(static_cast<int>(path.size()) - 1,
              r.dist[static_cast<std::size_t>(v)]);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
  }

  // (c) Theorem 4: every Voronoi cell is connected.
  for (std::size_t s = 0; s < r.sites.size(); ++s) {
    std::vector<char> in_cell(static_cast<std::size_t>(g.n()), 0);
    int cell_size = 0;
    for (int v = 0; v < g.n(); ++v) {
      if (r.site_of[static_cast<std::size_t>(v)] == static_cast<int>(s)) {
        in_cell[static_cast<std::size_t>(v)] = 1;
        ++cell_size;
      }
    }
    ASSERT_GT(cell_size, 0);
    // BFS within the cell from its site must reach the whole cell.
    const auto d = net::bfs_distances_masked(
        g, r.sites[s], in_cell);
    int reached = 0;
    for (int v = 0; v < g.n(); ++v) {
      if (in_cell[static_cast<std::size_t>(v)] &&
          d[static_cast<std::size_t>(v)] != net::kUnreached) {
        ++reached;
      }
    }
    EXPECT_EQ(reached, cell_size) << "cell of site " << r.sites[s];
  }

  // (d) segment nodes' second record is consistent.
  for (int v = 0; v < g.n(); ++v) {
    if (!r.is_segment[static_cast<std::size_t>(v)]) continue;
    EXPECT_NE(r.site2_of[static_cast<std::size_t>(v)],
              r.site_of[static_cast<std::size_t>(v)]);
    EXPECT_LE(std::abs(r.dist2[static_cast<std::size_t>(v)] -
                       r.dist[static_cast<std::size_t>(v)]),
              p.alpha);
    const auto path2 = r.path_to_second_site(v);
    ASSERT_GE(path2.size(), 2u);
    EXPECT_EQ(path2.front(), v);
    EXPECT_EQ(path2.back(),
              r.sites[static_cast<std::size_t>(
                  r.site2_of[static_cast<std::size_t>(v)])]);
    for (std::size_t i = 0; i + 1 < path2.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path2[i], path2[i + 1]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VoronoiPropertyTest,
    ::testing::Values(VoronoiPropertyCase{"window", 11},
                      VoronoiPropertyCase{"star", 12},
                      VoronoiPropertyCase{"lshape", 13},
                      VoronoiPropertyCase{"two_holes", 14},
                      VoronoiPropertyCase{"cross", 15}),
    [](const auto& info) {
      return std::string(info.param.shape) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace skelex::core
