#!/usr/bin/env python3
"""Validate the daemon's Prometheus exposition and request traces.

Usage: tools/check_exposition.py path/to/skelex_served

Starts the daemon on an ephemeral port, drives a cold + warm + variant
extract so every cache tier is exercised, then checks:

  * cmd=metrics returns an "exposition" text that lints as Prometheus:
    every sample belongs to a family announced by a `# TYPE` line, every
    sample line matches the exposition grammar, histogram `_bucket`
    series are cumulative and end in a `+Inf` bucket equal to `_count`;
  * the svc_request_ms{cmd="extract",...} histogram is populated for
    tier="cold" AND tier="warm_stage" (the tier labelling works);
  * serving-path families exist: svc_requests_total, svc_queue_wait_ms,
    svc_connections_opened_total, exec_pool_submitted_total;
  * cmd=trace returns the extract span trees: each has exactly one root
    (parent == -1) named svc.request and every other span's parent
    index points at an earlier span (a well-formed pre-order tree).
"""
import json
import re
import socket
import struct
import subprocess
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$')
TYPE_RE = re.compile(
    r'^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|untyped)$')


def send_frame(sock, payload: str):
    data = payload.encode()
    sock.sendall(struct.pack("<I", len(data)) + data)


def recv_frame(sock) -> str:
    hdr = b""
    while len(hdr) < 4:
        chunk = sock.recv(4 - len(hdr))
        if not chunk:
            raise EOFError("connection closed mid-header")
        hdr += chunk
    (n,) = struct.unpack("<I", hdr)
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        buf += chunk
    return buf.decode()


def fail(msg: str):
    print(f"FAIL: {msg}")
    sys.exit(1)


def base_family(name: str) -> str:
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def lint_exposition(text: str):
    """Returns {family: type}; fails on any grammar violation."""
    types = {}
    samples = []  # (name, labels-or-None, value-string)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            fail(f"exposition line {lineno}: empty line")
        m = TYPE_RE.match(line)
        if m:
            if m.group(1) in types:
                fail(f"line {lineno}: duplicate TYPE for {m.group(1)}")
            types[m.group(1)] = m.group(2)
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"exposition line {lineno} doesn't parse: {line!r}")
        samples.append((m.group(1), m.group(2), m.group(3)))

    if not samples:
        fail("exposition has no samples")

    buckets = defaultdict(list)   # (family, labels-minus-le) -> [(le, v)]
    counts = {}
    for name, labels, value in samples:
        fam = base_family(name)
        if fam not in types:
            fail(f"sample {name} has no # TYPE header for {fam}")
        if types[fam] == "histogram":
            if name.endswith("_bucket"):
                le = re.search(r'le="([^"]*)"', labels or "")
                if not le:
                    fail(f"histogram bucket without le label: {name}{labels}")
                stripped = re.sub(r',?le="[^"]*"', "", labels)
                if stripped == "{}":
                    stripped = None  # an le-only block matches no-labels
                buckets[(fam, stripped)].append((le.group(1), float(value)))
            elif name.endswith("_count"):
                counts[(fam, labels)] = float(value)
        elif name != fam:
            fail(f"suffix sample {name} on non-histogram family {fam}")

    for (fam, labels), series in buckets.items():
        values = [v for _, v in series]
        if values != sorted(values):
            fail(f"{fam}{labels}: buckets not cumulative: {values}")
        if series[-1][0] != "+Inf":
            fail(f"{fam}{labels}: last bucket is {series[-1][0]}, not +Inf")
        if (fam, labels) not in counts:
            fail(f"{fam}{labels}: histogram without _count sample")
        if counts[(fam, labels)] != values[-1]:
            fail(f"{fam}{labels}: +Inf bucket {values[-1]} != "
                 f"_count {counts[(fam, labels)]}")
    return types, samples


def check_traces(trace_obj):
    reqs = trace_obj["requests"]
    if not reqs:
        fail("cmd=trace returned no requests")
    for req in reqs:
        spans = req["spans"]
        roots = [s for s in spans if s["parent"] == -1]
        if len(roots) != 1:
            fail(f"request {req['request_id']}: {len(roots)} roots, want 1")
        if roots[0]["name"] != "svc.request":
            fail(f"root span is {roots[0]['name']}, not svc.request")
        for i, s in enumerate(spans):
            if s["parent"] >= i:
                fail(f"span {i} ({s['name']}) parent {s['parent']} "
                     "is not an earlier span")
        if req["tier"] not in ("cold", "warm_scenario", "warm_stage"):
            fail(f"unexpected extract tier {req['tier']!r}")
    names = {s["name"] for s in reqs[-1]["spans"]}
    # The warm tree must still show the pipeline structure: stage spans
    # from core::ScopedStage and memo lookups from the cache.
    if not any(n.startswith("memo.") for n in names):
        fail(f"warm tree has no memo spans: {sorted(names)}")
    if "svc.scenario" not in names:
        fail(f"warm tree has no svc.scenario span: {sorted(names)}")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    daemon = subprocess.Popen(
        [sys.argv[1], "--threads", "2", "--slow-ms", "0"],
        stdout=subprocess.PIPE, text=True)
    line = daemon.stdout.readline()
    m = re.match(r"listening on 127\.0\.0\.1:(\d+)", line)
    if not m:
        daemon.kill()
        fail(f"no listening line, got: {line!r}")
    port = int(m.group(1))

    try:
        return run_checks(port, daemon)
    finally:
        # A failed assertion must not leave the daemon holding ctest's
        # output pipe open (ctest waits for EOF, not just child exit).
        if daemon.poll() is None:
            daemon.kill()


def run_checks(port, daemon):
    sock = socket.create_connection(("127.0.0.1", port))
    try:
        extract = "cmd=extract\nid=1\nshape=window\nnodes=700\nseed=5\n"
        # The k override changes every cached stage's key while the
        # scenario still hits — the warm_scenario tier.
        for i, req in enumerate((extract,               # cold
                                 extract,               # warm_stage
                                 extract + "k=3\n")):   # warm_scenario
            send_frame(sock, req.replace("id=1", f"id={i + 1}"))
            resp = json.loads(recv_frame(sock))
            assert resp["ok"], resp

        send_frame(sock, "cmd=metrics\nid=4\n")
        metrics = json.loads(recv_frame(sock))
        assert metrics["ok"], metrics
        types, samples = lint_exposition(metrics["exposition"])

        sample_names = {name for name, _, _ in samples}
        for family in ("svc_requests_total", "svc_queue_wait_ms_bucket",
                       "svc_connections_opened_total",
                       "exec_pool_submitted_total", "svc_request_ms_bucket"):
            if family not in sample_names:
                fail(f"missing serving-path family: {family}")

        def tier_count(tier):
            total = 0.0
            for name, labels, value in samples:
                if (name == "svc_request_ms_count" and labels
                        and 'cmd="extract"' in labels
                        and f'tier="{tier}"' in labels):
                    total += float(value)
            return total

        if tier_count("cold") < 1:
            fail("no svc_request_ms observations with tier=cold")
        if tier_count("warm_stage") < 1:
            fail("no svc_request_ms observations with tier=warm_stage")
        if tier_count("warm_scenario") < 1:
            fail("no svc_request_ms observations with tier=warm_scenario")

        send_frame(sock, "cmd=trace\nid=5\nlast=8\n")
        trace = json.loads(recv_frame(sock))
        assert trace["ok"] and trace["tracing"], trace
        check_traces(trace)

        send_frame(sock, "cmd=shutdown\nid=6\n")
        assert json.loads(recv_frame(sock))["ok"]
    finally:
        sock.close()

    rc = daemon.wait(timeout=30)
    if rc != 0:
        fail(f"daemon exited {rc} after shutdown")
    print(f"OK: exposition lints ({len(types)} families), tiers labelled, "
          f"span trees well-formed (port {port})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
