#!/usr/bin/env python3
"""Validate Chrome/Perfetto trace_event JSON produced by obs::MemoryTraceSink.

Checks, per file:
  * the file parses as JSON and has a "traceEvents" list (object form) or
    is itself a list (array form);
  * every event carries the required keys (name, ph, ts, pid, tid), with
    ph one of the phases the sink emits ('X' complete span, 'i' instant);
  * complete spans carry a non-negative "dur" and instants don't;
  * timestamps are finite and non-negative;
  * spans nest monotonically per (pid, tid) lane: sorted by start time,
    any two spans on one lane are either disjoint or properly nested —
    a partial overlap means the emitter's scoping is broken.

Usage: check_trace.py FILE [FILE...]
Exits 0 when every file validates; prints one line per problem otherwise.
"""

import json
import math
import sys

ALLOWED_PHASES = {"X", "i"}
REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")

# Span ends are clock readings of the same scope that produced the next
# span's start; allow this much slop (microseconds) before calling a
# partial overlap broken.
OVERLAP_SLOP_US = 1e-3


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return doc
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError('top-level object has no "traceEvents" list')
        return events
    raise ValueError("top level is neither an object nor a list")


def check_event(i, e, errors):
    if not isinstance(e, dict):
        errors.append(f"event {i}: not an object")
        return None
    for k in REQUIRED_KEYS:
        if k not in e:
            errors.append(f"event {i}: missing required key {k!r}")
            return None
    ph = e["ph"]
    if ph not in ALLOWED_PHASES:
        errors.append(f"event {i}: unexpected phase {ph!r}")
        return None
    ts = e["ts"]
    if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
        errors.append(f"event {i}: bad ts {ts!r}")
        return None
    if ph == "X":
        dur = e.get("dur")
        if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
            errors.append(f"event {i}: span with bad dur {dur!r}")
            return None
    elif "dur" in e:
        errors.append(f"event {i}: instant must not carry dur")
        return None
    if "args" in e and not isinstance(e["args"], dict):
        errors.append(f"event {i}: args must be an object")
        return None
    return e


def check_nesting(events, errors):
    lanes = {}
    for i, e in enumerate(events):
        if e["ph"] == "X":
            lanes.setdefault((e["pid"], e["tid"]), []).append((e["ts"], e["dur"], i, e["name"]))
    for (pid, tid), spans in sorted(lanes.items()):
        spans.sort()
        # Stack of (end, index, name): each new span must start after the
        # top ends (sibling) or end within it (child).
        stack = []
        for ts, dur, i, name in spans:
            end = ts + dur
            while stack and ts >= stack[-1][0] - OVERLAP_SLOP_US:
                stack.pop()
            if stack and end > stack[-1][0] + OVERLAP_SLOP_US:
                oi, oname = stack[-1][1], stack[-1][2]
                errors.append(
                    f"lane pid={pid} tid={tid}: span {i} ({name!r}, "
                    f"[{ts}, {end}]) partially overlaps span {oi} "
                    f"({oname!r} ending {stack[-1][0]})"
                )
                continue
            stack.append((end, i, name))


def check_file(path):
    errors = []
    try:
        raw = load_events(path)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        return [f"{path}: {exc}"], 0
    events = []
    for i, e in enumerate(raw):
        checked = check_event(i, e, errors)
        if checked is not None:
            events.append(checked)
    check_nesting(events, errors)
    return [f"{path}: {e}" for e in errors], len(raw)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors, count = check_file(path)
        if errors:
            failed = True
            for line in errors:
                print(line)
        else:
            print(f"{path}: OK ({count} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
