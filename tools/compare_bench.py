#!/usr/bin/env python3
"""Compare two BENCH_<N>.json baselines (tools/record_bench.sh output).

Usage: tools/compare_bench.py BASELINE CURRENT [--max-ratio 1.25]

Two checks, in decreasing order of strictness:

  * Result fields must be BYTE-IDENTICAL: everything except wall times
    (the "millis" keys) is deterministic — transmission counts, rounds,
    skeleton sizes, cycle counts, coverage, and the metrics counters.
    Any difference is a behavior change and fails the comparison.

  * Wall times must not regress by more than --max-ratio (default 1.25,
    i.e. fail on a >25% slowdown) on the fig4 total and on every thm5
    row. Speedups never fail. Wall time is noisy across machines; set
    --max-ratio 0 to skip the timing check entirely (the CI smoke run
    does this when comparing across runner generations).

Rows present in only one file (e.g. a new sweep size, or the appended
"engine" section) are reported but do not fail the byte-identity check —
the schema is append-only by design.
"""
import argparse
import json
import sys


# Keys whose values vary run-to-run or host-to-host: wall times in any
# form ("millis", "_ms", "speedup", "req_per_s"), runner shape
# ("host_threads"), memory high-water marks ("peak_rss_kb"), the
# host-dependent speedup-gate record ("gate", a whole subtree), and
# cache-scheduling artifacts (hit/miss counts depend on request
# interleaving, so "hit_rate" and the raw counters).
_VOLATILE = {"req_per_s", "hit_rate", "host_threads", "max_in_flight",
             "hits", "misses", "insertions", "evictions", "bytes", "entries",
             "peak_rss_kb", "gate"}


def strip_millis(obj):
    """Recursively drop every key with run-varying (non-result) content."""
    if isinstance(obj, dict):
        return {
            k: strip_millis(v)
            for k, v in obj.items()
            if "millis" not in k and "speedup" not in k
            and "gb_per_s" not in k
            and not k.endswith("_ms") and k not in _VOLATILE
        }
    if isinstance(obj, list):
        return [strip_millis(v) for v in obj]
    return obj


# Row lists that grow as sweeps gain sizes/scenarios: compare them as
# maps keyed by the named field, so a baseline recorded before a new
# sweep tier still matches (rows only in `cur` are schema growth, like
# keys only in `cur`). Paths are matched on the dotted prefix.
_KEYED_LISTS = {
    "thm5.rows": "n",
    "thm5_large.rows": "n",
    "fig4.scenarios": "scenario",
    "fig4_large.stages": "stage",
}


def _key_rows(rows, field):
    keyed = {}
    for r in rows:
        if not isinstance(r, dict) or field not in r:
            return None  # malformed; fall back to positional comparison
        keyed[f"{field}={r[field]}"] = r
    return keyed if len(keyed) == len(rows) else None


def diff_result_fields(base, cur, path=""):
    """Yield human-readable differences between stripped structures.

    Keys present only in `cur` (append-only schema growth) are allowed;
    keys that vanished or changed value are violations.
    """
    if isinstance(base, dict) and isinstance(cur, dict):
        for k in base:
            p = f"{path}.{k}" if path else k
            if k not in cur:
                yield f"missing in current: {p}"
            else:
                yield from diff_result_fields(base[k], cur[k], p)
        return
    if isinstance(base, list) and isinstance(cur, list):
        field = _KEYED_LISTS.get(path)
        if field:
            b_keyed, c_keyed = _key_rows(base, field), _key_rows(cur, field)
            if b_keyed is not None and c_keyed is not None:
                yield from diff_result_fields(b_keyed, c_keyed, path)
                return
        if len(base) != len(cur):
            yield f"length changed at {path}: {len(base)} -> {len(cur)}"
            return
        for i, (b, c) in enumerate(zip(base, cur)):
            yield from diff_result_fields(b, c, f"{path}[{i}]")
        return
    if base != cur:
        yield f"value changed at {path}: {base!r} -> {cur!r}"


def check_timings(base, cur, max_ratio):
    """Yield timing regressions beyond max_ratio."""
    b_total = base.get("fig4", {}).get("total_millis")
    c_total = cur.get("fig4", {}).get("total_millis")
    if b_total and c_total and c_total > b_total * max_ratio:
        yield (f"fig4 total_millis regressed: {b_total} -> {c_total} "
               f"(> x{max_ratio})")
    b_rows = {r["n"]: r for r in base.get("thm5", {}).get("rows", [])}
    for row in cur.get("thm5", {}).get("rows", []):
        b = b_rows.get(row["n"])
        if not b:
            continue
        if b["millis"] and row["millis"] > b["millis"] * max_ratio:
            yield (f"thm5 n={row['n']} millis regressed: "
                   f"{b['millis']} -> {row['millis']} (> x{max_ratio})")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-ratio", type=float, default=1.25,
                    help="fail when current millis > baseline * ratio; "
                         "0 skips the timing check")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    failures = list(diff_result_fields(strip_millis(base), strip_millis(cur)))
    for msg in failures:
        print(f"RESULT DIFF: {msg}")

    if args.max_ratio > 0:
        timing = list(check_timings(base, cur, args.max_ratio))
        for msg in timing:
            print(f"TIMING: {msg}")
        failures += timing

    if failures:
        print(f"FAIL: {len(failures)} difference(s) vs {args.baseline}")
        return 1
    print(f"OK: {args.current} matches {args.baseline} "
          f"(results byte-identical"
          + (f", timings within x{args.max_ratio})" if args.max_ratio > 0
             else ", timing check skipped)"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
