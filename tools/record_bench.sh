#!/usr/bin/env bash
# Record a perf/behavior baseline: run the fig4 + thm5 sweeps and distil
# their reports into a stable-schema BENCH_<N>.json at the repo root, so
# future PRs have a trajectory to diff against
# (tools/compare_bench.py diffs two of them).
#
# Usage: tools/record_bench.sh [build-dir] [out-file]
#   build-dir defaults to ./build, out-file to ./BENCH_10.json.
#
# Schema (append-only — add keys, never rename):
#   {
#     "schema": 1,
#     "fig4":  {"scenarios": [{scenario, nodes, skeleton_nodes, cycles,
#                              coverage, millis}...],
#               "total_millis": ...},
#     "thm5":  {"rows": [{n, transmissions, tx_per_node, rounds,
#                         millis}...]},
#     "thm5_large": {"rows": [{n, transmissions, tx_per_node, rounds,
#                              millis, peak_rss_kb}...]},  # n=1e5 tier
#     "metrics": {"fig4": {<name>: <counter value>, ...},
#                 "thm5": {...}},  # per-bench (each process's registry)
#     "engine": {"n", "host_threads",          # intra-round parallelism:
#                "millis_threads1",            # largest thm5 cell, serial
#                "millis_threads8",            # same cell, 8 engine threads
#                "speedup"}                    # threads1 / threads8
#     "engine_large": {"n", "host_threads", "millis_threads1",
#                      "millis_threads8", "speedup", "peak_rss_kb",
#                      "gate": {required_speedup, host_threads, enforced,
#                               observed_speedup, justification}}
#     "fig4_large": {"scenario", "nodes", "skeleton_nodes", "cycles",
#                    "coverage", "millis", "peak_rss_kb",
#                    "stages": [{stage, bytes, millis, gb_per_s}...]}
#                    # per-stage memory-bandwidth attribution: the flood
#                    # kernels' bytes-touched counters (net::Workspace's
#                    # model, the same values riding the Perfetto spans)
#                    # over that stage's span time
#     "service": {"host_threads",              # CI runner core count
#                 "req_per_s", "p50_ms", "p99_ms",
#                 "cold_ms", "warm_ms", "warm_speedup",  # memo payoff
#                 "tail_variant_ms", "tail_warm_speedup",  # keyed tail DAG
#                 "hit_rate", "max_in_flight", "failures",
#                 "counters": {<svc_*/exec_pool_* counter>: value}}
#   }
# Wall-times vary run to run; everything else is deterministic — the
# engine rows' transmissions/rounds are asserted equal across thread
# counts before the summary is written. Perf gates run here too: the
# memo cache must make warm service requests >= 3x faster than cold, a
# never-seen prune_len (warm stages 1-6, fresh tail) must also land
# >= 3x below cold, on multi-core runners the 8-thread engine must beat
# serial, and on hosts with >= 4 cores the n=1e5 cell must show a >= 2x
# 8-thread speedup. On smaller hosts that last gate cannot be meaningful,
# so instead of silently passing it records a machine-readable
# justification under engine_large.gate and prints a loud warning.
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_10.json}

if [[ ! -x "$build_dir/bench/bench_thm5_complexity" ]]; then
  echo "error: benches not built in $build_dir (cmake --build $build_dir)" >&2
  exit 1
fi

# Intra-round engine parallelism on the largest thm5 network: one sweep
# serial, one at 8 engine threads (sweep-level --threads 1 so the engine
# is the only parallelism). Copied aside before the canonical runs below
# overwrite bench_out/.
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 1 --engine-threads 1 > /dev/null)
cp "$build_dir/bench_out/thm5_complexity.json" "$build_dir/bench_out/thm5_et1.json"
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 1 --engine-threads 8 > /dev/null)
cp "$build_dir/bench_out/thm5_complexity.json" "$build_dir/bench_out/thm5_et8.json"

# The large-n tier: one n=1e5 cell (counter-sampled deployment), serial
# vs 8 engine threads. This is the row the multi-core speedup claim is
# measured on — big enough that the flood kernels stream memory instead
# of living in cache.
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 1 --engine-threads 1 \
  --min-n 100000 --max-n 100000 > /dev/null)
cp "$build_dir/bench_out/thm5_complexity.json" "$build_dir/bench_out/thm5_large_et1.json"
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 1 --engine-threads 8 \
  --min-n 100000 --max-n 100000 > /dev/null)
cp "$build_dir/bench_out/thm5_complexity.json" "$build_dir/bench_out/thm5_large_et8.json"

# A 100k-node centralized extraction (the window shape scaled up): its
# stage trace carries the flood kernels' bytes-touched counters, giving
# per-stage effective memory bandwidth for the large tier.
(cd "$build_dir" && ./bench/bench_fig4_scenarios --threads 1 --large-n 100000 > /dev/null)
cp "$build_dir/bench_out/fig4_scenarios.json" "$build_dir/bench_out/fig4_large.json"

(cd "$build_dir" && ./bench/bench_fig4_scenarios --threads 4 > /dev/null)
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 4 --telemetry > /dev/null)

# The extraction service under load: sustained req/s, latency
# percentiles, and the memo cache's cold-vs-warm payoff.
(cd "$build_dir" && ./bench/bench_service --threads 4 --clients 4 --rounds 10)

python3 - "$build_dir" "$out" <<'EOF'
import json
import os
import sys

build_dir, out = sys.argv[1], sys.argv[2]

fig4 = json.load(open(f"{build_dir}/bench_out/fig4_scenarios.json"))
thm5 = json.load(open(f"{build_dir}/bench_out/thm5_complexity.json"))
et1 = json.load(open(f"{build_dir}/bench_out/thm5_et1.json"))
et8 = json.load(open(f"{build_dir}/bench_out/thm5_et8.json"))
large1 = json.load(open(f"{build_dir}/bench_out/thm5_large_et1.json"))
large8 = json.load(open(f"{build_dir}/bench_out/thm5_large_et8.json"))
fig4_large = json.load(open(f"{build_dir}/bench_out/fig4_large.json"))
svc = json.load(open(f"{build_dir}/bench_out/service_load.json"))

def counters(report):
    out = {}
    for m in report.get("metrics", []):
        if m["kind"] == "counter":
            key = m["name"]
            if m.get("labels"):
                key += "{" + m["labels"] + "}"
            out[key] = m["value"]
    return dict(sorted(out.items()))

def row_millis(row):
    return round(sum(t["millis"] for t in row["trace"]), 3)

# The engine's determinism contract: identical results at any engine
# thread count. Assert it on the raw reports before recording timings.
for r1, r8 in zip(et1["rows"] + large1["rows"], et8["rows"] + large8["rows"]):
    for key in ("n", "transmissions", "tx_per_node", "rounds"):
        assert r1[key] == r8[key], (
            f"engine-threads result mismatch at n={r1['n']}: "
            f"{key} {r1[key]} != {r8[key]}")

big1, big8 = et1["rows"][-1], et8["rows"][-1]
m1, m8 = row_millis(big1), row_millis(big8)
xl1, xl8 = large1["rows"][-1], large8["rows"][-1]
xm1, xm8 = row_millis(xl1), row_millis(xl8)

# Memory-bandwidth attribution for the large centralized extraction,
# stage by stage: the flood kernels count the bytes they touch (see
# net::Workspace's model) into the same Perfetto spans the trace
# records, so GB/s here is the kernels' effective streaming rate, not a
# whole-process guess. Bytes are deterministic; only the rates vary.
wxl = next(s for s in fig4_large["scenarios"] if s["scenario"] == "window_xl")
stages = [
    {
        "stage": t["stage"],
        "bytes": t["bytes"],
        "millis": round(t["millis"], 3),
        "gb_per_s": round(t["bytes"] / max(t["millis"], 1e-9) / 1e6, 3),
    }
    for t in wxl["trace"]
    if t["bytes"] > 0
]

cpu = os.cpu_count() or 1
xl_speedup = round(xm1 / xm8, 3) if xm8 else None
# The headline claim — ">= 2x at 8 engine threads" — is only meaningful
# with >= 4 physical cores behind the pool. Enforce it there; elsewhere
# record WHY it was not enforced, machine-readably, and say so loudly.
gate = {
    "required_speedup": 2.0,
    "host_threads": cpu,
    "enforced": cpu >= 4,
    "observed_speedup": xl_speedup,
    "justification": None,
}
if gate["enforced"]:
    assert xl_speedup is not None and xl_speedup >= 2.0, (
        f"multi-core gate FAILED: n={xl1['n']} engine speedup "
        f"{xl_speedup} < 2.0x at 8 threads on a {cpu}-core host")
else:
    gate["justification"] = (
        f"host has {cpu} hardware threads (< 4): an 8-thread engine "
        f"cannot be expected to reach 2x; observed {xl_speedup}x")
    print(f"WARNING: multi-core speedup gate NOT ENFORCED: "
          f"{gate['justification']}", file=sys.stderr)

summary = {
    "schema": 1,
    "fig4": {
        "scenarios": [
            {k: s[k] for k in ("scenario", "nodes", "skeleton_nodes",
                               "cycles", "coverage", "millis")}
            for s in fig4["scenarios"]
        ],
        "total_millis": round(sum(s["millis"] for s in fig4["scenarios"]), 3),
    },
    "thm5": {
        "rows": [
            {
                "n": r["n"],
                "transmissions": r["transmissions"],
                "tx_per_node": r["tx_per_node"],
                "rounds": r["rounds"],
                "millis": row_millis(r),
            }
            for r in thm5["rows"]
        ],
    },
    "thm5_large": {
        "rows": [
            {
                "n": r["n"],
                "transmissions": r["transmissions"],
                "tx_per_node": r["tx_per_node"],
                "rounds": r["rounds"],
                "millis": row_millis(r),
                "peak_rss_kb": r["peak_rss_kb"],
            }
            for r in large1["rows"]
        ],
    },
    "metrics": {"fig4": counters(fig4), "thm5": counters(thm5)},
    "engine": {
        "n": big1["n"],
        "host_threads": os.cpu_count(),
        "millis_threads1": m1,
        "millis_threads8": m8,
        "speedup": round(m1 / m8, 3) if m8 else None,
    },
    "engine_large": {
        "n": xl1["n"],
        "host_threads": cpu,
        "millis_threads1": xm1,
        "millis_threads8": xm8,
        "speedup": xl_speedup,
        "peak_rss_kb": max(xl1["peak_rss_kb"], xl8["peak_rss_kb"]),
        "gate": gate,
    },
    "fig4_large": {
        "scenario": wxl["scenario"],
        "nodes": wxl["nodes"],
        "skeleton_nodes": wxl["skeleton_nodes"],
        "cycles": wxl["cycles"],
        "coverage": wxl["coverage"],
        "millis": wxl["millis"],
        "peak_rss_kb": wxl["peak_rss_kb"],
        "stages": stages,
    },
    "service": {
        "host_threads": os.cpu_count(),
        "pool_threads": svc["pool_threads"],
        "clients": svc["clients"],
        "requests": svc["requests"],
        "failures": svc["failures"],
        "max_in_flight": svc["max_in_flight"],
        "req_per_s": round(svc["req_per_s"], 1),
        "p50_ms": round(svc["p50_ms"], 3),
        "p99_ms": round(svc["p99_ms"], 3),
        "cold_ms": round(svc["cold_ms"], 3),
        "warm_ms": round(svc["warm_ms"], 3),
        "warm_speedup": round(svc["warm_speedup"], 2),
        "tail_variant_ms": round(svc["tail_variant_ms"], 3),
        "tail_warm_speedup": round(svc["tail_warm_speedup"], 2),
        "hit_rate": round(svc["hit_rate"], 4),
        # The serving-path counters (request/connection/pool totals) ride
        # along so the trajectory shows request accounting, not just
        # latency. Deterministic counters only: histograms/gauges are
        # wall-time-ish, slow-request counts depend on the runner, and
        # cache hit/miss splits depend on request interleaving.
        "counters": {
            k: v for k, v in counters(svc).items()
            if (k.startswith(("svc_requests_total", "svc_connections_",
                              "exec_pool_")))
        },
    },
}

# Perf gates. The memo cache must pay for itself: a fully warm service
# request >= 3x faster than the cold one (sequential, like-for-like).
assert svc["failures"] == 0, f"service requests failed: {svc['failures']}"
assert svc["warm_speedup"] >= 3.0, (
    f"memo cache payoff too small: warm_speedup {svc['warm_speedup']:.2f}x"
    " < 3x")
# The keyed tail DAG: a never-seen prune_len replays stages 1-6 from
# cache and recomputes only prune + byproducts, so it too must land
# >= 3x below cold.
assert svc["tail_warm_speedup"] >= 3.0, (
    f"tail-stage cache payoff too small: tail_warm_speedup "
    f"{svc['tail_warm_speedup']:.2f}x < 3x")
# On any multi-core runner, the 8-thread engine must beat serial on the
# largest thm5 cell (the intra-round parallelism contract).
if (os.cpu_count() or 1) >= 2:
    assert m8 < m1, (
        f"engine threads=8 ({m8} ms) not faster than serial ({m1} ms) "
        f"on a {os.cpu_count()}-core runner")

with open(out, "w") as f:
    json.dump(summary, f, indent=1)
    f.write("\n")
print(f"wrote {out}")
EOF
