#!/usr/bin/env bash
# Record a perf/behavior baseline: run the fig4 + thm5 sweeps and distil
# their reports into a stable-schema BENCH_<N>.json at the repo root, so
# future PRs have a trajectory to diff against.
#
# Usage: tools/record_bench.sh [build-dir] [out-file]
#   build-dir defaults to ./build, out-file to ./BENCH_3.json.
#
# Schema (append-only — add keys, never rename):
#   {
#     "schema": 1,
#     "fig4":  {"scenarios": [{scenario, nodes, skeleton_nodes, cycles,
#                              coverage, millis}...],
#               "total_millis": ...},
#     "thm5":  {"rows": [{n, transmissions, tx_per_node, rounds,
#                         millis}...]},
#     "metrics": {"fig4": {<name>: <counter value>, ...},
#                 "thm5": {...}}   # per-bench (each process's registry)
#   }
# Wall-times vary run to run; everything else is deterministic.
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_3.json}

if [[ ! -x "$build_dir/bench/bench_fig4_scenarios" ]]; then
  echo "error: benches not built in $build_dir (cmake --build $build_dir)" >&2
  exit 1
fi

(cd "$build_dir" && ./bench/bench_fig4_scenarios --threads 4 > /dev/null)
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 4 --telemetry > /dev/null)

python3 - "$build_dir" "$out" <<'EOF'
import json
import sys

build_dir, out = sys.argv[1], sys.argv[2]

fig4 = json.load(open(f"{build_dir}/bench_out/fig4_scenarios.json"))
thm5 = json.load(open(f"{build_dir}/bench_out/thm5_complexity.json"))

def counters(report):
    out = {}
    for m in report.get("metrics", []):
        if m["kind"] == "counter":
            key = m["name"]
            if m.get("labels"):
                key += "{" + m["labels"] + "}"
            out[key] = m["value"]
    return dict(sorted(out.items()))

summary = {
    "schema": 1,
    "fig4": {
        "scenarios": [
            {k: s[k] for k in ("scenario", "nodes", "skeleton_nodes",
                               "cycles", "coverage", "millis")}
            for s in fig4["scenarios"]
        ],
        "total_millis": round(sum(s["millis"] for s in fig4["scenarios"]), 3),
    },
    "thm5": {
        "rows": [
            {
                "n": r["n"],
                "transmissions": r["transmissions"],
                "tx_per_node": r["tx_per_node"],
                "rounds": r["rounds"],
                "millis": round(sum(t["millis"] for t in r["trace"]), 3),
            }
            for r in thm5["rows"]
        ],
    },
    "metrics": {"fig4": counters(fig4), "thm5": counters(thm5)},
}

with open(out, "w") as f:
    json.dump(summary, f, indent=1)
    f.write("\n")
print(f"wrote {out}")
EOF
