#!/usr/bin/env bash
# Record a perf/behavior baseline: run the fig4 + thm5 sweeps and distil
# their reports into a stable-schema BENCH_<N>.json at the repo root, so
# future PRs have a trajectory to diff against
# (tools/compare_bench.py diffs two of them).
#
# Usage: tools/record_bench.sh [build-dir] [out-file]
#   build-dir defaults to ./build, out-file to ./BENCH_5.json.
#
# Schema (append-only — add keys, never rename):
#   {
#     "schema": 1,
#     "fig4":  {"scenarios": [{scenario, nodes, skeleton_nodes, cycles,
#                              coverage, millis}...],
#               "total_millis": ...},
#     "thm5":  {"rows": [{n, transmissions, tx_per_node, rounds,
#                         millis}...]},
#     "metrics": {"fig4": {<name>: <counter value>, ...},
#                 "thm5": {...}},  # per-bench (each process's registry)
#     "engine": {"n", "host_threads",          # intra-round parallelism:
#                "millis_threads1",            # largest thm5 cell, serial
#                "millis_threads8",            # same cell, 8 engine threads
#                "speedup"}                    # threads1 / threads8
#   }
# Wall-times vary run to run; everything else is deterministic — the
# engine rows' transmissions/rounds are asserted equal across thread
# counts before the summary is written.
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_5.json}

if [[ ! -x "$build_dir/bench/bench_thm5_complexity" ]]; then
  echo "error: benches not built in $build_dir (cmake --build $build_dir)" >&2
  exit 1
fi

# Intra-round engine parallelism on the largest thm5 network: one sweep
# serial, one at 8 engine threads (sweep-level --threads 1 so the engine
# is the only parallelism). Copied aside before the canonical runs below
# overwrite bench_out/.
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 1 --engine-threads 1 > /dev/null)
cp "$build_dir/bench_out/thm5_complexity.json" "$build_dir/bench_out/thm5_et1.json"
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 1 --engine-threads 8 > /dev/null)
cp "$build_dir/bench_out/thm5_complexity.json" "$build_dir/bench_out/thm5_et8.json"

(cd "$build_dir" && ./bench/bench_fig4_scenarios --threads 4 > /dev/null)
(cd "$build_dir" && ./bench/bench_thm5_complexity --threads 4 --telemetry > /dev/null)

python3 - "$build_dir" "$out" <<'EOF'
import json
import os
import sys

build_dir, out = sys.argv[1], sys.argv[2]

fig4 = json.load(open(f"{build_dir}/bench_out/fig4_scenarios.json"))
thm5 = json.load(open(f"{build_dir}/bench_out/thm5_complexity.json"))
et1 = json.load(open(f"{build_dir}/bench_out/thm5_et1.json"))
et8 = json.load(open(f"{build_dir}/bench_out/thm5_et8.json"))

def counters(report):
    out = {}
    for m in report.get("metrics", []):
        if m["kind"] == "counter":
            key = m["name"]
            if m.get("labels"):
                key += "{" + m["labels"] + "}"
            out[key] = m["value"]
    return dict(sorted(out.items()))

def row_millis(row):
    return round(sum(t["millis"] for t in row["trace"]), 3)

# The engine's determinism contract: identical results at any engine
# thread count. Assert it on the raw reports before recording timings.
for r1, r8 in zip(et1["rows"], et8["rows"]):
    for key in ("n", "transmissions", "tx_per_node", "rounds"):
        assert r1[key] == r8[key], (
            f"engine-threads result mismatch at n={r1['n']}: "
            f"{key} {r1[key]} != {r8[key]}")

big1, big8 = et1["rows"][-1], et8["rows"][-1]
m1, m8 = row_millis(big1), row_millis(big8)

summary = {
    "schema": 1,
    "fig4": {
        "scenarios": [
            {k: s[k] for k in ("scenario", "nodes", "skeleton_nodes",
                               "cycles", "coverage", "millis")}
            for s in fig4["scenarios"]
        ],
        "total_millis": round(sum(s["millis"] for s in fig4["scenarios"]), 3),
    },
    "thm5": {
        "rows": [
            {
                "n": r["n"],
                "transmissions": r["transmissions"],
                "tx_per_node": r["tx_per_node"],
                "rounds": r["rounds"],
                "millis": row_millis(r),
            }
            for r in thm5["rows"]
        ],
    },
    "metrics": {"fig4": counters(fig4), "thm5": counters(thm5)},
    "engine": {
        "n": big1["n"],
        "host_threads": os.cpu_count(),
        "millis_threads1": m1,
        "millis_threads8": m8,
        "speedup": round(m1 / m8, 3) if m8 else None,
    },
}

with open(out, "w") as f:
    json.dump(summary, f, indent=1)
    f.write("\n")
print(f"wrote {out}")
EOF
