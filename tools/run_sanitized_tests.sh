#!/usr/bin/env bash
# Builds the tree with -DSKELEX_SANITIZE=ON (ASan + UBSan) in a separate
# build directory and runs the full test suite under the sanitizers.
#
#   BUILD_DIR=build-asan ./tools/run_sanitized_tests.sh [ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}

JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . -DSKELEX_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
