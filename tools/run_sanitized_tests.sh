#!/usr/bin/env bash
# Builds the tree with sanitizers in a separate build directory and runs
# the test suite under them.
#
#   SKELEX_SANITIZE=address (default) -> ASan + UBSan, build-asan
#   SKELEX_SANITIZE=thread            -> TSan,         build-tsan
#
#   ./tools/run_sanitized_tests.sh [ctest args...]
#   SKELEX_SANITIZE=thread ./tools/run_sanitized_tests.sh -R 'EngineParallel|ChurnSoak'
#
# The full (no -R) run includes the randomized churn soaks
# (tests/test_maintain.cpp ChurnSoak.*): ~60 rounds of continuous
# join/leave/link churn with the maintainer's invariant checker asserted
# every round — the intended memory-error diet for ASan. The TSan subset
# adds ChurnSoak to the engine-parallel filter so the churn-compiled
# fault plans also run under the race detector.
#
# BUILD_DIR overrides the per-mode default directory.
set -euo pipefail

cd "$(dirname "$0")/.."
MODE=${SKELEX_SANITIZE:-address}
case "$MODE" in
  thread) default_dir=build-tsan ;;
  *)      default_dir=build-asan ;;
esac
BUILD_DIR=${BUILD_DIR:-$default_dir}

JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . -DSKELEX_SANITIZE="$MODE"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" "$@"
