#!/usr/bin/env python3
"""Smoke-test the extraction daemon over its real wire protocol.

Usage: tools/service_smoke.py path/to/skelex_served

Starts the daemon on an ephemeral port and checks the service contract
end to end:

  * ping round-trips;
  * a cold and a warm extract of the SAME request are byte-identical
    after stripping the wall-time "millis" fields — the memo-determinism
    gate: a cache hit must change nothing but latency;
  * a request differing only in a stage-4 parameter still matches the
    cold request's stage-1 trace facts (shared upstream stages);
  * cache stats report hits after the warm request;
  * malformed requests produce ok=false errors, not dropped connections;
  * cmd=shutdown makes the daemon drain and exit 0;
  * churn-session determinism gate: the SAME session/churn/extract
    sequence against a --threads 1 and a --threads 8 daemon produces
    byte-identical responses (modulo millis), every probe's maintained
    skeleton matches the canonical from-scratch extraction, and
    cmd=metrics exposes the maintainer tier counters.
"""
import json
import re
import socket
import struct
import subprocess
import sys


def send_frame(sock, payload: str):
    data = payload.encode()
    sock.sendall(struct.pack("<I", len(data)) + data)


def recv_frame(sock) -> str:
    hdr = b""
    while len(hdr) < 4:
        chunk = sock.recv(4 - len(hdr))
        if not chunk:
            raise EOFError("connection closed mid-header")
        hdr += chunk
    (n,) = struct.unpack("<I", hdr)
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        buf += chunk
    return buf.decode()


def strip_millis(text: str) -> str:
    return re.sub(r'"millis": [0-9.eE+-]+', '"millis": _', text)


def fail(msg: str):
    print(f"FAIL: {msg}")
    sys.exit(1)


def start_daemon(path: str, threads: int):
    daemon = subprocess.Popen(
        [path, "--threads", str(threads)],
        stdout=subprocess.PIPE, text=True)
    line = daemon.stdout.readline()
    m = re.match(r"listening on 127\.0\.0\.1:(\d+)", line)
    if not m:
        daemon.kill()
        fail(f"no listening line, got: {line!r}")
    return daemon, int(m.group(1))


def session_sequence(sock):
    """One scripted live-scenario session; returns the raw responses."""
    out = []
    send_frame(sock, "cmd=session\nid=10\nshape=window\nnodes=500\nseed=7\n")
    out.append(recv_frame(sock))
    for i in range(3):
        send_frame(sock, f"cmd=churn\nid={11 + i}\nsession=1\nrounds=6\n"
                         f"churn_seed={41 + i}\n")
        out.append(recv_frame(sock))
        send_frame(sock, f"cmd=extract\nid={20 + i}\nsession=1\ncanonical=1\n")
        out.append(recv_frame(sock))
    send_frame(sock, "cmd=close\nid=30\nsession=1\n")
    out.append(recv_frame(sock))
    return out


def churn_session_gate(daemon_path: str):
    """Same ChurnScript over the wire at 1 and 8 pool threads: the
    maintained skeleton the daemon serves must be identical, and every
    probe must match the canonical extraction bit for bit."""
    runs = {}
    for threads in (1, 8):
        daemon, port = start_daemon(daemon_path, threads)
        sock = socket.create_connection(("127.0.0.1", port))
        try:
            runs[threads] = session_sequence(sock)

            if threads == 1:
                # Maintainer tier counters are visible via cmd=metrics.
                send_frame(sock, "cmd=metrics\nid=31\n")
                metrics = json.loads(recv_frame(sock))
                assert metrics["ok"], metrics
                expo = metrics["exposition"]
                for name in ("maintain_repairs_local",
                             "maintain_repairs_regional",
                             "maintain_repairs_full",
                             "svc_sessions_opened_total",
                             "svc_session_churn_rounds_total"):
                    if name not in expo:
                        fail(f"metrics exposition lacks {name}")

            send_frame(sock, "cmd=shutdown\nid=39\n")
            recv_frame(sock)
        finally:
            sock.close()
        rc = daemon.wait(timeout=30)
        if rc != 0:
            fail(f"churn-gate daemon (threads={threads}) exited {rc}")

    if [strip_millis(r) for r in runs[1]] != \
       [strip_millis(r) for r in runs[8]]:
        for a, b in zip(runs[1], runs[8]):
            if strip_millis(a) != strip_millis(b):
                print("threads=1:", strip_millis(a))
                print("threads=8:", strip_millis(b))
        fail("churn session diverges across pool thread counts")

    extracts = [json.loads(r) for r in runs[1]
                if '"matches_canonical"' in r]
    assert len(extracts) == 3, runs[1]
    for probe in extracts:
        assert probe["ok"] and probe["invariants_ok"], probe
        assert probe["healthy"], probe
        if not probe["matches_canonical"]:
            fail(f"served skeleton diverged from canonical: {probe}")
        assert probe["fingerprint"] == probe["canonical_fingerprint"], probe
    churns = [json.loads(r) for r in runs[1] if '"script_digest"' in r]
    assert len(churns) == 3 and all(c["ok"] for c in churns), runs[1]
    if not any(c["events"] > 0 for c in churns):
        fail("churn rounds produced no events — the gate tested nothing")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    daemon, port = start_daemon(sys.argv[1], threads=2)

    sock = socket.create_connection(("127.0.0.1", port))
    try:
        # ping
        send_frame(sock, "cmd=ping\nid=1\n")
        pong = json.loads(recv_frame(sock))
        assert pong == {"id": 1, "ok": True, "cmd": "ping"}, pong

        # memo-determinism gate: cold == warm modulo millis
        extract = "cmd=extract\nid=2\nshape=window\nnodes=800\nseed=3\n"
        send_frame(sock, extract)
        cold = recv_frame(sock)
        send_frame(sock, extract)
        warm = recv_frame(sock)
        if strip_millis(cold) != strip_millis(warm):
            print("cold:", strip_millis(cold))
            print("warm:", strip_millis(warm))
            fail("warm response differs from cold beyond wall time")
        cold_obj = json.loads(cold)
        assert cold_obj["ok"] and cold_obj["fingerprint"].startswith("0x")

        # a stage-4-only variant shares stages 1-3: same stage-1 trace facts
        send_frame(sock, extract.replace("id=2", "id=3") + "prune_len=9\n")
        variant = json.loads(recv_frame(sock))
        assert variant["ok"], variant
        cold_index = next(t for t in cold_obj["trace"] if t["stage"] == "index")
        var_index = next(t for t in variant["trace"] if t["stage"] == "index")
        assert (cold_index["nodes"], cold_index["messages"]) == \
               (var_index["nodes"], var_index["messages"]), (cold_index,
                                                             var_index)

        # stats show the warm hits
        send_frame(sock, "cmd=stats\nid=4\n")
        stats = json.loads(recv_frame(sock))
        assert stats["ok"] and stats["hits"] > 0, stats

        # malformed request -> structured error, connection stays up
        send_frame(sock, "cmd=extract\nid=5\nbogus=1\n")
        err = json.loads(recv_frame(sock))
        assert not err["ok"] and "bogus" in err["error"], err

        # clean shutdown
        send_frame(sock, "cmd=shutdown\nid=6\n")
        bye = json.loads(recv_frame(sock))
        assert bye["ok"], bye
    finally:
        sock.close()

    rc = daemon.wait(timeout=30)
    if rc != 0:
        fail(f"daemon exited {rc} after shutdown")

    churn_session_gate(sys.argv[1])

    print("OK: service smoke + memo-determinism + churn-session gates "
          f"passed (port {port}, fingerprint {cold_obj['fingerprint']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
