#!/usr/bin/env python3
"""Smoke-test the extraction daemon over its real wire protocol.

Usage: tools/service_smoke.py path/to/skelex_served

Starts the daemon on an ephemeral port and checks the service contract
end to end:

  * ping round-trips;
  * a cold and a warm extract of the SAME request are byte-identical
    after stripping the wall-time "millis" fields — the memo-determinism
    gate: a cache hit must change nothing but latency;
  * a request differing only in a stage-4 parameter still matches the
    cold request's stage-1 trace facts (shared upstream stages);
  * cache stats report hits after the warm request;
  * malformed requests produce ok=false errors, not dropped connections;
  * cmd=shutdown makes the daemon drain and exit 0.
"""
import json
import re
import socket
import struct
import subprocess
import sys


def send_frame(sock, payload: str):
    data = payload.encode()
    sock.sendall(struct.pack("<I", len(data)) + data)


def recv_frame(sock) -> str:
    hdr = b""
    while len(hdr) < 4:
        chunk = sock.recv(4 - len(hdr))
        if not chunk:
            raise EOFError("connection closed mid-header")
        hdr += chunk
    (n,) = struct.unpack("<I", hdr)
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        buf += chunk
    return buf.decode()


def strip_millis(text: str) -> str:
    return re.sub(r'"millis": [0-9.eE+-]+', '"millis": _', text)


def fail(msg: str):
    print(f"FAIL: {msg}")
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    daemon = subprocess.Popen(
        [sys.argv[1], "--threads", "2"],
        stdout=subprocess.PIPE, text=True)
    line = daemon.stdout.readline()
    m = re.match(r"listening on 127\.0\.0\.1:(\d+)", line)
    if not m:
        daemon.kill()
        fail(f"no listening line, got: {line!r}")
    port = int(m.group(1))

    sock = socket.create_connection(("127.0.0.1", port))
    try:
        # ping
        send_frame(sock, "cmd=ping\nid=1\n")
        pong = json.loads(recv_frame(sock))
        assert pong == {"id": 1, "ok": True, "cmd": "ping"}, pong

        # memo-determinism gate: cold == warm modulo millis
        extract = "cmd=extract\nid=2\nshape=window\nnodes=800\nseed=3\n"
        send_frame(sock, extract)
        cold = recv_frame(sock)
        send_frame(sock, extract)
        warm = recv_frame(sock)
        if strip_millis(cold) != strip_millis(warm):
            print("cold:", strip_millis(cold))
            print("warm:", strip_millis(warm))
            fail("warm response differs from cold beyond wall time")
        cold_obj = json.loads(cold)
        assert cold_obj["ok"] and cold_obj["fingerprint"].startswith("0x")

        # a stage-4-only variant shares stages 1-3: same stage-1 trace facts
        send_frame(sock, extract.replace("id=2", "id=3") + "prune_len=9\n")
        variant = json.loads(recv_frame(sock))
        assert variant["ok"], variant
        cold_index = next(t for t in cold_obj["trace"] if t["stage"] == "index")
        var_index = next(t for t in variant["trace"] if t["stage"] == "index")
        assert (cold_index["nodes"], cold_index["messages"]) == \
               (var_index["nodes"], var_index["messages"]), (cold_index,
                                                             var_index)

        # stats show the warm hits
        send_frame(sock, "cmd=stats\nid=4\n")
        stats = json.loads(recv_frame(sock))
        assert stats["ok"] and stats["hits"] > 0, stats

        # malformed request -> structured error, connection stays up
        send_frame(sock, "cmd=extract\nid=5\nbogus=1\n")
        err = json.loads(recv_frame(sock))
        assert not err["ok"] and "bogus" in err["error"], err

        # clean shutdown
        send_frame(sock, "cmd=shutdown\nid=6\n")
        bye = json.loads(recv_frame(sock))
        assert bye["ok"], bye
    finally:
        sock.close()

    rc = daemon.wait(timeout=30)
    if rc != 0:
        fail(f"daemon exited {rc} after shutdown")
    print("OK: service smoke + memo-determinism gate passed "
          f"(port {port}, fingerprint {cold_obj['fingerprint']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
