// tools/skelex_cli.cpp
//
// Command-line front end: deploy a network in one of the built-in
// shapes, extract the skeleton, print a machine-readable summary and
// optionally write an SVG.
//
//   skelex_cli --shape window --nodes 2592 --degree 5.96 --svg out.svg
//   skelex_cli --shape star --radio qudg --alpha 0.4 --p 0.3
//   skelex_cli --shape smile --distributed        # run as messages
//   skelex_cli --input mynet.txt --save-skeleton skel.txt --dot skel.dot
//   skelex_cli --list-shapes
//
// Exit code 0 on success, 2 on bad usage.
#include <cstdio>
#include <fstream>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/pipeline.h"
#include "core/protocols.h"
#include "deploy/scenario.h"
#include "geometry/medial_axis_ref.h"
#include "geometry/shapes.h"
#include "io/graph_io.h"
#include "metrics/homotopy.h"
#include "metrics/quality.h"
#include "radio/radio_model.h"
#include "viz/svg.h"

namespace {

using namespace skelex;

struct Options {
  std::string shape = "window";
  int nodes = 2000;
  double degree = 7.0;
  std::uint64_t seed = 1;
  std::string radio = "udg";  // udg | qudg | lognormal
  double alpha = 0.4;         // qudg band width
  double p = 0.3;             // qudg band probability
  double xi = 1.0;            // lognormal sigma/eta
  core::Params params;
  std::string svg;
  std::string input;          // read the network instead of deploying
  std::string save_skeleton;  // write skeleton edge list
  std::string dot;            // write skeleton Graphviz DOT
  bool distributed = false;
  bool json = false;
};

void usage() {
  std::puts(
      "skelex_cli — boundary-free skeleton extraction\n"
      "  --shape NAME        deployment shape (--list-shapes)\n"
      "  --nodes N           target node count (default 2000)\n"
      "  --degree D          target average degree (default 7)\n"
      "  --seed S            RNG seed (default 1)\n"
      "  --radio MODEL       udg | qudg | lognormal (default udg)\n"
      "  --alpha A --p P     qudg parameters (default 0.4, 0.3)\n"
      "  --xi X              lognormal sigma/eta (default 1)\n"
      "  --k K --l L         index parameters (default 4, 4)\n"
      "  --svg FILE          write network + skeleton SVG\n"
      "  --input FILE        read a network (n/p/e format) instead of\n"
      "                      deploying one; region metrics are skipped\n"
      "  --save-skeleton F   write the skeleton as an edge list\n"
      "  --dot FILE          write the skeleton as Graphviz DOT\n"
      "  --distributed       also run the stages as messages and report cost\n"
      "  --json              machine-readable output\n"
      "  --list-shapes       print available shapes and exit");
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::strtod(argv[++i], nullptr);
      return true;
    };
    if (a == "--list-shapes") {
      for (const auto& s : geom::shapes::all_shapes()) {
        std::printf("%-12s holes=%zu%s\n", s.name.c_str(),
                    s.region.hole_count(),
                    s.paper_nodes ? "  (paper scenario)" : "");
      }
      std::exit(0);
    } else if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else if (a == "--shape" && i + 1 < argc) {
      o.shape = argv[++i];
    } else if (a == "--radio" && i + 1 < argc) {
      o.radio = argv[++i];
    } else if (a == "--svg" && i + 1 < argc) {
      o.svg = argv[++i];
    } else if (a == "--input" && i + 1 < argc) {
      o.input = argv[++i];
    } else if (a == "--save-skeleton" && i + 1 < argc) {
      o.save_skeleton = argv[++i];
    } else if (a == "--dot" && i + 1 < argc) {
      o.dot = argv[++i];
    } else if (a == "--distributed") {
      o.distributed = true;
    } else if (a == "--json") {
      o.json = true;
    } else {
      double v = 0;
      if (a == "--nodes" && next(v)) {
        o.nodes = static_cast<int>(v);
      } else if (a == "--degree" && next(v)) {
        o.degree = v;
      } else if (a == "--seed" && next(v)) {
        o.seed = static_cast<std::uint64_t>(v);
      } else if (a == "--alpha" && next(v)) {
        o.alpha = v;
      } else if (a == "--p" && next(v)) {
        o.p = v;
      } else if (a == "--xi" && next(v)) {
        o.xi = v;
      } else if (a == "--k" && next(v)) {
        o.params.k = static_cast<int>(v);
      } else if (a == "--l" && next(v)) {
        o.params.l = static_cast<int>(v);
      } else {
        std::fprintf(stderr, "unknown or incomplete option: %s\n", a.c_str());
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 2;
  }

  // External-network mode: read, extract, report structure only.
  if (!o.input.empty()) {
    try {
      const net::Graph g = io::read_graph_file(o.input);
      o.params.validate();
      const core::SkeletonResult r = core::extract_skeleton(g, o.params);
      if (o.json) {
        std::printf(
            "{\"input\":\"%s\",\"nodes\":%d,\"avg_degree\":%.3f,"
            "\"sites\":%zu,\"skeleton_nodes\":%d,\"skeleton_edges\":%d,"
            "\"components\":%d,\"cycles\":%d}\n",
            o.input.c_str(), g.n(), g.avg_degree(), r.critical_nodes.size(),
            r.skeleton.node_count(), r.skeleton.edge_count(),
            r.skeleton.component_count(), r.skeleton_cycle_rank());
      } else {
        std::printf("input %s: %d nodes, avg degree %.2f\n", o.input.c_str(),
                    g.n(), g.avg_degree());
        std::printf("skeleton: %d nodes, %d edges, %d component(s), %d "
                    "cycle(s)\n",
                    r.skeleton.node_count(), r.skeleton.edge_count(),
                    r.skeleton.component_count(), r.skeleton_cycle_rank());
      }
      if (!o.save_skeleton.empty()) {
        std::ofstream out(o.save_skeleton);
        io::write_skeleton(out, r.skeleton);
        std::printf("wrote %s\n", o.save_skeleton.c_str());
      }
      if (!o.dot.empty()) {
        std::ofstream out(o.dot);
        io::write_skeleton_dot(out, g, r.skeleton);
        std::printf("wrote %s\n", o.dot.c_str());
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }

  geom::Region region;
  try {
    region = geom::shapes::by_name(o.shape);
  } catch (const std::out_of_range&) {
    std::fprintf(stderr, "unknown shape '%s' (try --list-shapes)\n",
                 o.shape.c_str());
    return 2;
  }

  deploy::ScenarioSpec spec;
  spec.target_nodes = o.nodes;
  spec.target_avg_deg = o.degree;
  spec.seed = o.seed;
  deploy::Scenario sc;
  double range;
  try {
    if (o.radio == "udg") {
      sc = deploy::make_udg_scenario(region, spec);
      range = sc.range;
    } else if (o.radio == "qudg") {
      range = deploy::range_for_target_degree(region, o.nodes, o.degree);
      sc = deploy::make_scenario(region, spec,
                                 radio::QuasiUnitDiskModel(range, o.alpha, o.p));
    } else if (o.radio == "lognormal") {
      range = deploy::range_for_target_degree(region, o.nodes, o.degree);
      sc = deploy::make_scenario(region, spec,
                                 radio::LogNormalModel(range, o.xi));
    } else {
      std::fprintf(stderr, "unknown radio model '%s'\n", o.radio.c_str());
      return 2;
    }
    o.params.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  const net::Graph& g = sc.graph;
  const core::SkeletonResult r = core::extract_skeleton(g, o.params);
  const geom::ReferenceMedialAxis axis(region);
  const metrics::Medialness med = metrics::medialness(g, r.skeleton, axis);
  const metrics::HomotopyCheck hom = metrics::check_homotopy(g, r.skeleton, region);
  const double coverage =
      metrics::axis_coverage(g, r.skeleton, axis, 3.0 * range);

  if (o.json) {
    std::printf(
        "{\"shape\":\"%s\",\"nodes\":%d,\"avg_degree\":%.3f,\"range\":%.4f,"
        "\"sites\":%zu,\"skeleton_nodes\":%d,\"skeleton_edges\":%d,"
        "\"components\":%d,\"cycles\":%d,\"holes\":%d,\"homotopy_ok\":%s,"
        "\"medialness_mean_R\":%.3f,\"medialness_max_R\":%.3f,"
        "\"coverage_3R\":%.3f}\n",
        o.shape.c_str(), g.n(), g.avg_degree(), range, r.critical_nodes.size(),
        r.skeleton.node_count(), r.skeleton.edge_count(),
        r.skeleton.component_count(), r.skeleton_cycle_rank(),
        static_cast<int>(region.hole_count()), hom.ok ? "true" : "false",
        med.mean / range, med.max / range, coverage);
  } else {
    std::printf("shape %s: %d nodes, avg degree %.2f, range %.3f (%s)\n",
                o.shape.c_str(), g.n(), g.avg_degree(), range, o.radio.c_str());
    std::printf("skeleton: %d nodes, %d edges, %d component(s), %d cycle(s) "
                "[region holes: %zu] %s\n",
                r.skeleton.node_count(), r.skeleton.edge_count(),
                r.skeleton.component_count(), r.skeleton_cycle_rank(),
                region.hole_count(), hom.ok ? "OK" : "MISMATCH");
    std::printf("quality: medialness mean %.2fR max %.2fR, coverage %.2f "
                "@3R\n",
                med.mean / range, med.max / range, coverage);
  }

  if (o.distributed) {
    const core::DistributedRun run = core::run_distributed_stages(g, o.params);
    const sim::RunStats total = run.total();
    std::printf("distributed: %d rounds, %lld transmissions (%.1f per node), "
                "%lld receptions\n",
                total.rounds, static_cast<long long>(total.transmissions),
                static_cast<double>(total.transmissions) / g.n(),
                static_cast<long long>(total.receptions));
  }

  if (!o.save_skeleton.empty()) {
    std::ofstream out(o.save_skeleton);
    io::write_skeleton(out, r.skeleton);
    std::printf("wrote %s\n", o.save_skeleton.c_str());
  }
  if (!o.dot.empty()) {
    std::ofstream out(o.dot);
    io::write_skeleton_dot(out, g, r.skeleton);
    std::printf("wrote %s\n", o.dot.c_str());
  }
  if (!o.svg.empty()) {
    geom::Vec2 lo, hi;
    region.bounding_box(lo, hi);
    viz::SvgWriter svg(lo, hi);
    svg.add_graph_edges(g);
    svg.add_graph_nodes(g);
    svg.add_region_outline(region);
    svg.add_nodes(g, r.critical_nodes, "#1f77b4", 3.0);
    svg.add_skeleton(g, r.skeleton);
    svg.save(o.svg);
    std::printf("wrote %s\n", o.svg.c_str());
  }
  return hom.ok ? 0 : 1;
}
