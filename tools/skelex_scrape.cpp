// skelex_scrape — one-shot Prometheus scrape of a running daemon.
//
//   skelex_scrape --port N [--json]
//
// Connects to 127.0.0.1:<port>, sends cmd=metrics over the wire
// protocol, and prints the daemon's Prometheus/OpenMetrics exposition
// text to stdout — the moral equivalent of `curl :port/metrics` for a
// service whose only surface is the framed protocol. With --json the
// raw JSON response (exposition + structured snapshot) is printed
// instead. Exit 0 on success, 1 on any transport or response problem.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/protocol.h"
#include "svc/server.h"

namespace {

// Extracts and unescapes the JSON string value following `"key": "` in
// `json`. The responses are produced by io::JsonWriter (stable key
// order, known escape set), so a focused scan beats a JSON parser this
// repo deliberately does not have.
bool extract_string_field(const std::string& json, const std::string& key,
                          std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  out->clear();
  for (std::size_t i = at + needle.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"') return true;
    if (c != '\\') {
      *out += c;
      continue;
    }
    if (++i >= json.size()) return false;
    switch (json[i]) {
      case '"': *out += '"'; break;
      case '\\': *out += '\\'; break;
      case '/': *out += '/'; break;
      case 'b': *out += '\b'; break;
      case 'f': *out += '\f'; break;
      case 'n': *out += '\n'; break;
      case 'r': *out += '\r'; break;
      case 't': *out += '\t'; break;
      case 'u': {
        if (i + 4 >= json.size()) return false;
        const std::string hex = json.substr(i + 1, 4);
        char* end = nullptr;
        const long cp = std::strtol(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 4 || cp > 0xff) return false;
        *out += static_cast<char>(cp);  // writer only escapes < 0x20
        i += 4;
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated string
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  bool raw_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      raw_json = true;
    } else {
      std::fprintf(stderr, "usage: skelex_scrape --port N [--json]\n");
      return 2;
    }
  }
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "skelex_scrape: --port is required\n");
    return 2;
  }

  try {
    skelex::svc::Client client(static_cast<std::uint16_t>(port));
    skelex::svc::Request req;
    req.cmd = "metrics";
    const std::string response = client.request(req);
    if (response.find("\"ok\": true") == std::string::npos) {
      std::fprintf(stderr, "skelex_scrape: daemon returned an error: %s\n",
                   response.c_str());
      return 1;
    }
    if (raw_json) {
      std::fputs(response.c_str(), stdout);
      std::fputc('\n', stdout);
      return 0;
    }
    std::string text;
    if (!extract_string_field(response, "exposition", &text)) {
      std::fprintf(stderr, "skelex_scrape: no exposition in response\n");
      return 1;
    }
    std::fputs(text.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "skelex_scrape: %s\n", e.what());
    return 1;
  }
}
