// skelex_served — the long-lived extraction daemon.
//
//   skelex_served [--port N] [--threads N] [--cache-mb N]
//                 [--max-queue N] [--slow-ms N] [--no-request-trace]
//                 [--log-level L]
//
// Listens on 127.0.0.1 (port 0 = pick an ephemeral port), prints one
// "listening on 127.0.0.1:<port>" line to stdout (scripts parse it),
// then serves until a client sends cmd=shutdown. Structured JSON logs
// go to stderr (--log-level debug|info|warn|error, default info);
// --max-queue bounds admitted-but-unfinished requests (0 disables;
// over-limit frames get {"error":"busy","retry_ms":...});
// --slow-ms sets the slow-request warning threshold (0 disables);
// --no-request-trace turns off span recording (cmd=trace returns empty
// trees; the per-tier latency metrics stay on). See docs/service.md
// for the wire protocol and docs/observability.md for the telemetry.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "exec/thread_pool.h"
#include "obs/log.h"
#include "svc/server.h"

namespace {

long long parse_arg(int argc, char** argv, int& i, const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
  }
  char* end = nullptr;
  const long long v = std::strtoll(argv[++i], &end, 10);
  if (end == argv[i] || *end != '\0' || v < 0) {
    std::fprintf(stderr, "bad value for %s: %s\n", flag, argv[i]);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int threads = 0;  // 0: default_thread_count()
  long long cache_mb = 256;
  long long max_queue = 1024;
  long long slow_ms = 250;
  bool trace_requests = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<int>(parse_arg(argc, argv, i, "--port"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<int>(parse_arg(argc, argv, i, "--threads"));
    } else if (std::strcmp(argv[i], "--cache-mb") == 0) {
      cache_mb = parse_arg(argc, argv, i, "--cache-mb");
    } else if (std::strcmp(argv[i], "--max-queue") == 0) {
      max_queue = parse_arg(argc, argv, i, "--max-queue");
    } else if (std::strcmp(argv[i], "--slow-ms") == 0) {
      slow_ms = parse_arg(argc, argv, i, "--slow-ms");
    } else if (std::strcmp(argv[i], "--no-request-trace") == 0) {
      trace_requests = false;
    } else if (std::strcmp(argv[i], "--log-level") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--log-level needs a value\n");
        return 2;
      }
      skelex::obs::LogLevel level;
      if (!skelex::obs::parse_log_level(argv[++i], &level)) {
        std::fprintf(stderr, "bad log level: %s\n", argv[i]);
        return 2;
      }
      skelex::obs::Logger::global().set_min_level(level);
    } else {
      std::fprintf(stderr,
                   "usage: skelex_served [--port N] [--threads N] "
                   "[--cache-mb N] [--max-queue N] [--slow-ms N] "
                   "[--no-request-trace] "
                   "[--log-level debug|info|warn|error]\n");
      return 2;
    }
  }
  if (port > 65535) {
    std::fprintf(stderr, "bad port %d\n", port);
    return 2;
  }

  skelex::svc::ExtractionService::Options opt;
  opt.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  opt.trace_requests = trace_requests;
  opt.slow_request_ms = static_cast<double>(slow_ms);
  skelex::svc::ExtractionService service(opt);
  // Admission control (max_queue > 0) needs >= 2 pool workers — the
  // Server constructor rejects a 1-thread pool because its inline
  // submit() makes the busy rejection unreachable. A daemon on a
  // 1-core host (where --threads 0 resolves to 1) should still start,
  // so clamp up rather than die, and say so.
  int resolved = threads > 0 ? threads : skelex::exec::default_thread_count();
  if (max_queue > 0 && resolved < 2) {
    std::fprintf(stderr,
                 "skelex_served: --max-queue %lld needs >= 2 workers; "
                 "raising --threads %d -> 2\n",
                 max_queue, resolved);
    resolved = 2;
  }
  skelex::exec::ThreadPool pool(resolved);
  skelex::svc::Server::Options sopt;
  sopt.max_queue = static_cast<int>(max_queue);
  try {
    skelex::svc::Server server(service, pool,
                               static_cast<std::uint16_t>(port), sopt);
    std::printf("listening on 127.0.0.1:%u\n", server.port());
    std::fflush(stdout);  // scripts wait for this line
    server.serve_forever();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "skelex_served: %s\n", e.what());
    return 1;
  }
  return 0;
}
